"""Tiny-scale CI perf smoke: floors the fast paths must never sink below.

A guard, not a benchmark:

* **gain-engine floor** — a small LocalSearch ladder (n=31, b=600 —
  seconds even on a throttled CI runner) through the auto-resolved gain
  engine and through the pure-python full-scan kernel; fails if the gain
  engine is slower.
* **placement-scale floor** — build an array-backed placement plus its
  engine structures (loads, CSR, fingerprint, gain kernel) at
  b = 200 000, once through ``Placement.from_arrays`` and once through a
  re-implementation of the historical frozenset pipeline; fails if the
  array core is slower than the frozenset baseline or blows a generous
  wall-clock budget.
* **sharded-runner floor** — the Fig. 7 experiment spec through the
  declarative runner serially and with 2 worker processes; fails if the
  results differ at all (sharding must be semantically invisible) or if
  sharding costs more than pool overhead can explain — i.e. the fan-out
  silently degraded into serialization-plus-copying. On multi-core
  runners the sharded run must beat a modest ceiling below serial-plus-
  overhead; single-core runners only gate the overhead bound.

The real perf records (paper scale / million-object scale) live in
``bench_kernels.py`` / ``BENCH_2.json`` and ``bench_placement.py`` /
``BENCH_4.json``; this script only catches the "fast path silently
degraded below the floor" failure modes.

Run::

    PYTHONPATH=src python benchmarks/perf_smoke.py

Exits non-zero (with a JSON diagnostic on stdout) on regression.
"""

import hashlib
import json
import random
import sys
import time

from repro.core.adversary import LocalSearchAdversary
from repro.core.kernels import Incidence, make_kernel, resolve_gain_backing
from repro.core.placement import Placement
from repro.core.random_placement import RandomStrategy

N, B, S = 31, 600, 2
K_VALUES = (2, 3, 4)
ROUNDS = 7
#: Timing-noise allowance: "at least as fast" with 10% grace on a 2-digit
#: millisecond measurement.
SLACK = 1.10

#: Placement-scale gate: object count, node count, and the wall-clock
#: budget (seconds) for one array-path construction-to-engine-ready pass.
#: The budget is ~20x the measured time on a laptop — it exists to catch
#: an accidental O(b^2) or a silent fallback to per-object Python work,
#: not to benchmark the runner.
SCALE_B, SCALE_N, SCALE_R = 200_000, 512, 3
SCALE_BUDGET_SECONDS = 5.0


def sweep_seconds(kernel) -> float:
    adversary = LocalSearchAdversary(restarts=2, seed=0)
    placement = kernel.placement
    best = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for k in K_VALUES:
            adversary.attack(placement, k, S, kernel=kernel)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _scale_rows():
    """Valid sorted/distinct rows at gate scale, cheap to generate."""
    rows = []
    span = SCALE_N - SCALE_R
    for i in range(SCALE_B):
        start = (i * 7919) % span
        rows.append(tuple(range(start, start + SCALE_R)))
    return rows


def _array_ready_seconds(rows) -> float:
    start = time.perf_counter()
    placement = Placement.from_arrays(
        SCALE_N, rows, strategy="gate", validate=False
    )
    placement.load_array()
    placement.node_csr()
    placement.fingerprint()
    incidence = Incidence(placement)
    make_kernel(placement, S, backend="gain", incidence=incidence)
    incidence.csr()
    return time.perf_counter() - start


def legacy_build(n: int, replica_sets):
    """Validate + snapshot per-object node sets, as the pre-PR-4 core did.

    This and :func:`legacy_engine_structures` are the single definition of
    the historical frozenset pipeline — ``bench_placement.py`` imports
    them, so the CI floor gate and the BENCH_4 record measure the same
    baseline.
    """
    frozen = []
    r = None
    for obj_id, nodes in enumerate(replica_sets):
        node_list = list(nodes)
        node_set = frozenset(node_list)
        if len(node_set) != len(node_list):
            raise ValueError(f"object {obj_id} repeats a node")
        if r is None:
            r = len(node_set)
        if len(node_set) != r:
            raise ValueError(f"object {obj_id} has wrong r")
        for node in node_set:
            if not 0 <= node < n:
                raise ValueError(f"node {node} out of range")
        frozen.append(node_set)
    return tuple(frozen)


def legacy_engine_structures(n: int, replica_sets):
    """Loads, node incidence, CSR and fingerprint via per-set Python loops."""
    from array import array

    loads = [0] * n
    for nodes in replica_sets:
        for node in nodes:
            loads[node] += 1
    table = [[] for _ in range(n)]
    for obj_id, nodes in enumerate(replica_sets):
        for node in nodes:
            table[node].append(obj_id)
    incidence = tuple(tuple(row) for row in table)
    node_off = array("i", [0])
    node_objs = array("i")
    for objs in incidence:
        node_objs.extend(objs)
        node_off.append(len(node_objs))
    obj_off = array("i", [0])
    obj_nodes = array("i")
    for nodes in replica_sets:
        obj_nodes.extend(sorted(nodes))
        obj_off.append(len(obj_nodes))
    digest = hashlib.sha256()
    digest.update(f"{n}:{len(replica_sets)}".encode())
    for nodes in replica_sets:
        digest.update(b"|")
        digest.update(",".join(map(str, sorted(nodes))).encode())
    structures = (node_off, node_objs, obj_off, obj_nodes)
    return loads, incidence, structures, digest.hexdigest()


def _frozenset_ready_seconds(rows) -> float:
    start = time.perf_counter()
    frozen = legacy_build(SCALE_N, rows)
    legacy_engine_structures(SCALE_N, frozen)
    return time.perf_counter() - start


def placement_scale_gate(report: dict) -> int:
    rows = _scale_rows()
    array_seconds = min(_array_ready_seconds(rows) for _ in range(3))
    frozen_seconds = min(_frozenset_ready_seconds(rows) for _ in range(2))
    report["placement_scale"] = {
        "b": SCALE_B, "n": SCALE_N, "r": SCALE_R,
        "array_seconds": round(array_seconds, 4),
        "frozenset_seconds": round(frozen_seconds, 4),
        "speedup": round(frozen_seconds / array_seconds, 2),
        "budget_seconds": SCALE_BUDGET_SECONDS,
    }
    if array_seconds > SCALE_BUDGET_SECONDS:
        print(
            f"FAIL: array placement path took {array_seconds:.3f}s at "
            f"b={SCALE_B}, over the {SCALE_BUDGET_SECONDS:.1f}s budget",
            file=sys.stderr,
        )
        return 1
    if array_seconds > frozen_seconds * SLACK:
        print(
            f"FAIL: array placement path ({array_seconds:.3f}s) slower "
            f"than the frozenset baseline ({frozen_seconds:.3f}s)",
            file=sys.stderr,
        )
        return 1
    return 0


#: Sharded-runner gate: fixed pool-spawn/IPC allowance plus the ratio the
#: sharded wall clock must stay under on hosts where fan-out can actually
#: overlap (>= 2 cores). On a single core the comparison is meaningless —
#: the work cannot overlap and fork overhead swamps any grace ratio on a
#: loaded machine — so only the bit-identical check runs there.
SHARD_OVERHEAD_SECONDS = 0.75
SHARD_MULTI_CORE_RATIO = 1.10


def exp_shard_gate(report: dict) -> int:
    import os

    from repro.analysis import fig7
    from repro.core.batch import clear_attack_caches
    from repro.exp.runner import run_experiment

    spec = fig7.default_spec()
    clear_attack_caches()
    start = time.perf_counter()
    serial = run_experiment(spec, workers=1)
    serial_seconds = time.perf_counter() - start
    clear_attack_caches()
    start = time.perf_counter()
    sharded = run_experiment(spec, workers=2)
    sharded_seconds = time.perf_counter() - start
    cores = os.cpu_count() or 1
    gated = cores >= 2
    budget = (
        serial_seconds * SHARD_MULTI_CORE_RATIO + SHARD_OVERHEAD_SECONDS
        if gated else None
    )
    report["exp_shard"] = {
        "experiment": spec.experiment,
        "cells": len(serial.cells),
        "shards": serial.groups,
        "cpu_count": cores,
        "serial_seconds": round(serial_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "budget_seconds": round(budget, 4) if gated else None,
        "wall_clock_gated": gated,
        "bit_identical": serial.metrics == sharded.metrics,
    }
    if serial.metrics != sharded.metrics:
        print(
            "FAIL: sharded experiment results diverged from serial results",
            file=sys.stderr,
        )
        return 1
    if gated and sharded_seconds > budget:
        print(
            f"FAIL: sharded runner took {sharded_seconds:.3f}s vs "
            f"{serial_seconds:.3f}s serial (budget {budget:.3f}s, "
            f"{cores} cores)",
            file=sys.stderr,
        )
        return 1
    return 0


#: Affinity-pool gate: the persistent pool replaces fork-per-shard, so a
#: modest fixed allowance (worker spawns happen once) plus a ratio the
#: pool must stay under relative to the fork baseline on hosts where the
#: two mechanisms genuinely differ (>= 2 cores). Single-core runners only
#: check bit-identity — there the comparison measures scheduler noise.
POOL_OVERHEAD_SECONDS = 0.75
POOL_MULTI_CORE_RATIO = 1.10


def affinity_pool_gate(report: dict) -> int:
    import os

    from repro.analysis import fig2
    from repro.core.batch import clear_attack_caches
    from repro.exp.registry import kernel as experiment_kernel
    from repro.exp.runner import (
        _contiguous_groups,
        _run_sharded_forked,
        _run_sharded_pool,
    )

    spec = fig2.default_spec(b_values=(600, 1200), s_values=(2, 3), k_max=4)
    definition = experiment_kernel(spec.experiment)
    cells = [dict(cell) for cell in definition.expand(spec)]
    groups = _contiguous_groups(spec, definition, cells)

    def dispatch(run):
        metrics = [None] * len(cells)

        def flush(group, chunk):
            for offset, entry in enumerate(chunk):
                metrics[group.start + offset] = entry

        clear_attack_caches()
        start = time.perf_counter()
        run(spec, definition, cells, groups, 2, flush)
        return time.perf_counter() - start, json.loads(json.dumps(metrics))

    fork_seconds, fork_metrics = dispatch(_run_sharded_forked)
    pool_seconds, pool_metrics = dispatch(_run_sharded_pool)
    cores = os.cpu_count() or 1
    gated = cores >= 2
    budget = (
        fork_seconds * POOL_MULTI_CORE_RATIO + POOL_OVERHEAD_SECONDS
        if gated else None
    )
    report["affinity_pool"] = {
        "experiment": spec.experiment,
        "cells": len(cells),
        "shards": len(groups),
        "cpu_count": cores,
        "fork_seconds": round(fork_seconds, 4),
        "pool_seconds": round(pool_seconds, 4),
        "budget_seconds": round(budget, 4) if gated else None,
        "wall_clock_gated": gated,
        "bit_identical": fork_metrics == pool_metrics,
    }
    if fork_metrics != pool_metrics:
        print(
            "FAIL: affinity pool results diverged from the fork baseline",
            file=sys.stderr,
        )
        return 1
    if gated and pool_seconds > budget:
        print(
            f"FAIL: affinity pool took {pool_seconds:.3f}s vs "
            f"{fork_seconds:.3f}s fork baseline (budget {budget:.3f}s, "
            f"{cores} cores)",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    placement = RandomStrategy(N, 3).place(B, random.Random(0))
    gain = make_kernel(placement, S, backend="gain")
    python = make_kernel(placement, S, backend="python")
    gain_damages = tuple(
        LocalSearchAdversary(restarts=2, seed=0).attack(
            placement, k, S, kernel=gain
        ).damage
        for k in K_VALUES
    )
    python_damages = tuple(
        LocalSearchAdversary(restarts=2, seed=0).attack(
            placement, k, S, kernel=python
        ).damage
        for k in K_VALUES
    )
    gain_seconds = sweep_seconds(gain)
    python_seconds = sweep_seconds(python)
    report = {
        "n": N, "b": B, "s": S, "k_values": list(K_VALUES),
        "gain_backing": resolve_gain_backing(),
        "gain_seconds": round(gain_seconds, 5),
        "python_seconds": round(python_seconds, 5),
        "speedup": round(python_seconds / gain_seconds, 2),
        "damages_agree": gain_damages == python_damages,
    }
    status = placement_scale_gate(report)
    status = exp_shard_gate(report) or status
    status = affinity_pool_gate(report) or status
    print(json.dumps(report))
    if gain_damages != python_damages:
        print("FAIL: gain engine and python kernel disagree", file=sys.stderr)
        return 1
    if gain_seconds > python_seconds * SLACK:
        print(
            f"FAIL: gain engine ({gain_seconds:.4f}s) slower than pure "
            f"python ({python_seconds:.4f}s)",
            file=sys.stderr,
        )
        return 1
    return status


if __name__ == "__main__":
    sys.exit(main())
