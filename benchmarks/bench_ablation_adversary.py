"""Ablation: adversary engine quality and cost.

DESIGN.md calls out that simulation figures use the local-search adversary
by default (exact search is opt-in via REPRO_EFFORT=exact). This bench
quantifies the substitution: on instances where exact search is feasible,
how much damage does each heuristic find relative to the optimum, and at
what cost?
"""

import random
import time

from conftest import emit

from repro.core.adversary import (
    BranchAndBoundAdversary,
    ExhaustiveAdversary,
    GreedyAdversary,
    LocalSearchAdversary,
)
from repro.core.random_placement import RandomStrategy
from repro.core.simple import SimpleStrategy
from repro.util.tables import TextTable


def _compare_engines():
    table = TextTable(
        ["placement", "k", "s", "greedy", "local", "b&b(exact)", "exhaustive",
         "t_local ms", "t_bnb ms"],
        title="Ablation: adversary damage found (higher = better attack)",
    )
    rows = []
    scenarios = [
        ("Random n=31 b=600", RandomStrategy(31, 5).place(600, random.Random(1)), 4, 3),
        ("Random n=31 b=600", RandomStrategy(31, 5).place(600, random.Random(2)), 3, 2),
        ("Simple n=31 b=600", SimpleStrategy(31, 3, 1).place(600), 4, 2),
        ("Random n=20 b=300", RandomStrategy(20, 3).place(300, random.Random(3)), 4, 2),
    ]
    for name, placement, k, s in scenarios:
        greedy = GreedyAdversary().attack(placement, k, s)
        t0 = time.perf_counter()
        local = LocalSearchAdversary(restarts=4).attack(placement, k, s)
        t_local = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        bnb = BranchAndBoundAdversary().attack(placement, k, s)
        t_bnb = (time.perf_counter() - t0) * 1000
        exhaustive = ExhaustiveAdversary(max_subsets=5_000_000).attack(
            placement, k, s
        )
        table.add_row(
            [name, k, s, greedy.damage, local.damage, bnb.damage,
             exhaustive.damage, round(t_local, 1), round(t_bnb, 1)]
        )
        rows.append((greedy, local, bnb, exhaustive))
    return table.render(), rows


def test_adversary_ladder(benchmark):
    text, rows = benchmark.pedantic(_compare_engines, rounds=1, iterations=1)
    emit("ablation_adversary", text)
    for greedy, local, bnb, exhaustive in rows:
        assert bnb.exact
        assert bnb.damage == exhaustive.damage  # both exact engines agree
        assert greedy.damage <= local.damage <= bnb.damage
        # Local search finds >= 90% of optimal damage on these instances,
        # which is the basis for using it in the simulation figures.
        assert local.damage >= 0.9 * bnb.damage
