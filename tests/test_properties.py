"""Cross-module property-based tests on the paper's core invariants.

These are the load-bearing guarantees of the reproduction:

1. Simple placements are valid packings at the Eqn.-1 minimal lambda.
2. Lemma 2 / Lemma 3 lower bounds never exceed exact worst-case
   availability.
3. The Combo DP never does worse than any single-stratum alternative.
4. Random placements obey Definition 4's load quota.
5. prAvail is sandwiched sensibly (monotonicity in each parameter).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adversary import ExhaustiveAdversary
from repro.core.bounds import lb_avail_combo, lb_avail_simple
from repro.core.combo import ComboStrategy
from repro.core.placement import Placement
from repro.core.random_placement import RandomStrategy
from repro.core.rand_analysis import pr_avail_rnd
from repro.core.simple import SimpleStrategy
from repro.designs.blocks import BlockDesign
from repro.designs.catalog import Existence
from repro.util.combinatorics import binom

# Small systems where every stratum is constructible and exact adversary
# search is instantaneous.
SMALL_SYSTEMS = [(13, 3), (16, 4), (9, 3), (10, 4)]


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(SMALL_SYSTEMS), st.data())
def test_simple_packing_and_soundness(system, data):
    n, r = system
    x = data.draw(st.integers(1, r - 1))
    s = data.draw(st.integers(x + 1, r))
    k = data.draw(st.integers(s, min(s + 2, n - 1)))
    b = data.draw(st.integers(1, 60))
    strategy = SimpleStrategy(n, r, x, tier=Existence.CONSTRUCTIBLE)
    placement = strategy.place(b)
    lam = strategy.minimal_lambda(b)

    design = BlockDesign.from_blocks(
        n, [tuple(sorted(ns)) for ns in placement.replica_sets]
    )
    assert design.max_coverage(x + 1) <= lam  # Definition 2

    attack = ExhaustiveAdversary(max_subsets=500_000).attack(placement, k, s)
    assert placement.b - attack.damage >= lb_avail_simple(b, k, s, x, lam)  # Lemma 2


@settings(max_examples=12, deadline=None)
@given(st.sampled_from([(13, 3), (16, 4)]), st.data())
def test_combo_soundness_and_dominance(system, data):
    n, r = system
    s = data.draw(st.integers(2, r))
    k = data.draw(st.integers(s, min(s + 2, n - 1)))
    b = data.draw(st.integers(5, 80))
    strategy = ComboStrategy(n, r, s, tier=Existence.CONSTRUCTIBLE)
    plan = strategy.plan(b, k)

    # Lemma 3 soundness under exact attack.
    placement = strategy.place(b, k, plan=plan)
    attack = ExhaustiveAdversary(max_subsets=500_000).attack(placement, k, s)
    assert placement.b - attack.damage >= plan.lower_bound

    # DP dominance over single strata.
    for x in range(s):
        sub = strategy.subsystems[x]
        if sub is None:
            continue
        lambdas = [0] * s
        lambdas[x] = sub.minimal_lambda(b)
        assert plan.lower_bound >= min(b, max(0, lb_avail_combo(b, k, s, lambdas)))


@settings(max_examples=20, deadline=None)
@given(
    st.integers(5, 25),
    st.integers(2, 5),
    st.integers(1, 120),
    st.integers(0, 2**31),
)
def test_random_quota_property(n, r, b, seed):
    if r > n:
        return
    placement = RandomStrategy(n, r).place(b, random.Random(seed))
    limit = -(-r * b // n)
    assert placement.max_load() <= limit
    assert sum(placement.loads()) == r * b


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_pr_avail_monotonicities(data):
    n = data.draw(st.sampled_from([31, 71]))
    r = data.draw(st.integers(2, 5))
    s = data.draw(st.integers(1, r))
    k = data.draw(st.integers(s, 8))
    b = data.draw(st.sampled_from([300, 600, 1200]))
    base = pr_avail_rnd(n, k, r, s, b)
    assert 0 <= base <= b
    # More objects cannot decrease the count (though the fraction may drop).
    assert pr_avail_rnd(n, k, r, s, 2 * b) >= base
    # One more failure never helps.
    if k + 1 < n:
        assert pr_avail_rnd(n, k + 1, r, s, b) <= base


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31), st.integers(2, 4), st.integers(1, 3))
def test_attack_damage_bounded_by_replica_budget(seed, k, s):
    """No attack can kill more objects than failed replicas / s."""
    n, r, b = 12, 3, 40
    if s > r:
        return
    placement = RandomStrategy(n, r).place(b, random.Random(seed))
    attack = ExhaustiveAdversary().attack(placement, k, s)
    failed_replicas = sum(
        1
        for nodes in placement.replica_sets
        for node in nodes
        if node in set(attack.nodes)
    )
    assert attack.damage * s <= failed_replicas


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31))
def test_placement_failed_objects_matches_adversary_damage(seed):
    rng = random.Random(seed)
    placement = RandomStrategy(10, 3).place(30, rng)
    nodes = tuple(rng.sample(range(10), 3))
    from repro.core.adversary import damage

    assert damage(placement, nodes, 2) == len(placement.failed_objects(nodes, 2))


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 5), st.integers(0, 2**31))
def test_simple_capacity_lemma1_consistency(r, seed):
    """A materialized Simple placement never exceeds Lemma-1 capacity per lambda."""
    rng = random.Random(seed)
    n_by_r = {2: 10, 3: 13, 4: 16, 5: 25}
    n = n_by_r[r]
    x = rng.randrange(1, r)
    strategy = SimpleStrategy(n, r, x, tier=Existence.CONSTRUCTIBLE)
    b = rng.randint(1, 40)
    lam = strategy.minimal_lambda(b)
    sub = strategy.subsystem
    cap = sub.capacity(lam)
    assert b <= cap
    # Eqn. 1 bracketing: one lambda step fewer would not fit.
    if lam > sub.mu:
        assert b > sub.capacity(lam - sub.mu)
