"""Span tracing: gating, nesting, the ring, and the JSONL exporter."""

import json
import threading

from repro import obs
from repro.obs.report import load_trace, validate_span


class TestGating:
    def test_off_by_default_returns_shared_noop(self):
        assert not obs.trace_enabled()
        a = obs.span("engine.attack", k=1)
        b = obs.span("store.commit")
        assert a is b  # the shared no-op: zero allocation when off
        with a:
            pass
        assert obs.trace_spans() == []

    def test_env_enables(self, monkeypatch, tmp_path):
        path = str(tmp_path / "t.jsonl")
        monkeypatch.setenv("REPRO_TRACE", path)
        assert obs.trace_enabled()
        assert obs.trace_path() == path

    def test_configure_overrides_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "env.jsonl"))
        obs.configure_trace(None)
        assert not obs.trace_enabled()
        obs.reset_trace()
        assert obs.trace_enabled()


class TestSpans:
    def test_nesting_parent_depth(self, tmp_path):
        obs.configure_trace(str(tmp_path / "t.jsonl"))
        with obs.span("runner.shard", start=0):
            with obs.span("engine.attack", k=2):
                pass
            with obs.span("engine.attack", k=3):
                pass
        outer_last = obs.trace_spans()
        names = [r["name"] for r in outer_last]
        # Children finish (and record) before their parent.
        assert names == ["engine.attack", "engine.attack", "runner.shard"]
        shard = outer_last[2]
        assert shard["parent"] is None and shard["depth"] == 0
        for child in outer_last[:2]:
            assert child["parent"] == shard["seq"]
            assert child["depth"] == 1
        assert outer_last[0]["attrs"] == {"k": 2}
        for record in outer_last:
            validate_span(record)

    def test_exporter_writes_valid_jsonl(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        obs.configure_trace(path)
        with obs.span("store.commit", index=4, bytes=128):
            pass
        records = load_trace(path)
        assert len(records) == 1
        assert records[0]["name"] == "store.commit"
        assert records[0]["attrs"] == {"index": 4, "bytes": 128}
        # One JSON object per line, compact separators.
        with open(path, encoding="utf-8") as handle:
            line = handle.readline()
        assert json.loads(line)["name"] == "store.commit"

    def test_ring_is_bounded(self, tmp_path):
        obs.configure_trace(str(tmp_path / "t.jsonl"))
        for _ in range(obs.TRACE_RING_CAP + 10):
            with obs.span("sim.strike", k=1):
                pass
        assert len(obs.trace_spans()) == obs.TRACE_RING_CAP

    def test_threads_have_independent_stacks(self, tmp_path):
        obs.configure_trace(str(tmp_path / "t.jsonl"))
        done = threading.Event()
        results = {}

        def worker():
            with obs.span("engine.attack", k=9) as inner:
                results["depth"] = inner.depth
            done.set()

        with obs.span("runner.shard", start=0):
            thread = threading.Thread(target=worker)
            thread.start()
            done.wait(5)
            thread.join(5)
        # The worker's span is a root in its own thread, not a child of
        # the main thread's open shard span.
        assert results["depth"] == 0

    def test_clear_trace_empties_ring_not_file(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        obs.configure_trace(path)
        with obs.span("native.compile"):
            pass
        obs.clear_trace()
        assert obs.trace_spans() == []
        assert len(load_trace(path)) == 1
