"""The tentpole acceptance property: deterministic counters are pinned.

For a fixed spec and seed, the deterministic instrument snapshot (the
manifest ``"obs"`` record) must be bit-identical across every gain
backing, native thread count, and worker count — and invariant under
chaos plans whose retries succeed. Semantic work is a property of the
experiment, not of the machinery that ran it.
"""

import json
import random

import pytest

from repro import faults, obs
from repro.analysis import fig2
from repro.core import native
from repro.core.batch import clear_attack_caches
from repro.core.kernels import GAIN_BACKINGS, numpy_available
from repro.exp.runner import run_experiment
from repro.exp.store import RunStore
from repro.sim import LifetimeSimulator, SimConfig

THREAD_COUNTS = (1, 2, 4)
WORKER_COUNTS = (1, 2)


def available_gain_backings():
    return [
        backing
        for backing in GAIN_BACKINGS
        if (backing != "numpy" or numpy_available())
        and (backing != "native" or native.available())
    ]


def _spec():
    return fig2.default_spec(b_values=(600, 1200), s_values=(2, 3), k_max=4)


def _det_delta(workers):
    """One fresh instrumented run; returns its deterministic delta."""
    clear_attack_caches()
    obs.reset_metrics()
    obs.set_metrics(True)
    mark = obs.checkpoint()
    run = run_experiment(_spec(), workers=workers)
    det = obs.deterministic_delta(mark)
    assert run.obs == det
    return det


class TestSnapshotIdentity:
    def test_identical_across_backings_threads_workers(self, monkeypatch):
        reference = None
        reference_key = None
        previous_threads = native.configured_threads()
        try:
            for backing in available_gain_backings():
                monkeypatch.setenv("REPRO_GAIN_BACKING", backing)
                for threads in THREAD_COUNTS:
                    native.configure_threads(threads)
                    for workers in WORKER_COUNTS:
                        det = _det_delta(workers)
                        key = (backing, threads, workers)
                        if reference is None:
                            reference, reference_key = det, key
                            assert det["counters"]["attack.searches"] > 0
                        else:
                            assert json.dumps(det, sort_keys=True) == (
                                json.dumps(reference, sort_keys=True)
                            ), (key, reference_key)
        finally:
            native.configure_threads(previous_threads)

    def test_invariant_under_absorbed_chaos_retries(self, tmp_path):
        clear_attack_caches()
        obs.reset_metrics()
        obs.set_metrics(True)
        mark = obs.checkpoint()
        run_experiment(
            _spec(), store=RunStore(str(tmp_path / "baseline")), workers=2
        )
        baseline = obs.deterministic_delta(mark)

        plan = faults.FaultPlan.from_dict(
            {
                "seed": 7,
                "rules": [
                    {
                        "site": "runner.shard_start",
                        "kind": "error",
                        "when": {"attempt": 0},
                    }
                ],
            }
        )
        for workers in WORKER_COUNTS:
            faults.configure(plan)
            clear_attack_caches()
            obs.reset_metrics()
            obs.set_metrics(True)
            mark = obs.checkpoint()
            store = RunStore(str(tmp_path / f"w{workers}"))
            run = run_experiment(_spec(), store=store, workers=workers)
            det = obs.deterministic_delta(mark)
            faults.clear()
            assert run.retries >= 1  # chaos actually bit
            # ...and left no trace in the pinned snapshot.
            assert det == baseline

    def test_simulator_counters_identical_across_backings(self, monkeypatch):
        config = SimConfig(
            n=13, r=3, s=2, k=2, events=200, seed=9, racks=3,
            strike_period=8.0, measure_period=8.0, effort="fast",
        )
        reference = None
        for backing in available_gain_backings():
            monkeypatch.setenv("REPRO_GAIN_BACKING", backing)
            clear_attack_caches()
            obs.reset_metrics()
            obs.set_metrics(True)
            mark = obs.checkpoint()
            LifetimeSimulator(config).run()
            det = obs.deterministic_delta(mark)
            if reference is None:
                reference = det
                assert det["counters"]["sim.strikes"] > 0
            else:
                assert det == reference, backing


class TestStoreByteIdentity:
    def test_instrumented_store_matches_uninstrumented(self, tmp_path):
        spec = _spec()
        plain_store = RunStore(str(tmp_path / "plain"))
        assert not obs.metrics_enabled()
        plain = run_experiment(spec, store=plain_store, workers=2)

        clear_attack_caches()
        obs.set_metrics(True)
        instrumented_store = RunStore(str(tmp_path / "obs"))
        instrumented = run_experiment(spec, store=instrumented_store, workers=2)

        with open(plain_store.cells_file(spec), "rb") as handle:
            plain_bytes = handle.read()
        with open(instrumented_store.cells_file(spec), "rb") as handle:
            instrumented_bytes = handle.read()
        assert instrumented_bytes == plain_bytes

        def manifest(store):
            import os

            path = os.path.join(store.run_path(spec), "manifest.json")
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)

        plain_manifest = manifest(plain_store)
        instrumented_manifest = manifest(instrumented_store)
        assert "obs" not in plain_manifest
        assert instrumented_manifest.pop("obs")
        assert instrumented_manifest == plain_manifest
        assert instrumented.result() == plain.result()
