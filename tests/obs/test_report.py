"""Span schema validation, trace loading, and metric rendering."""

import pytest

from repro import obs
from repro.obs.report import (
    load_trace,
    metrics_json,
    render_metrics,
    validate_span,
)


def _good_span(**overrides):
    record = {
        "name": "engine.attack",
        "ts": 1.5,
        "dur": 0.25,
        "pid": 42,
        "seq": 7,
        "parent": None,
        "depth": 0,
        "attrs": {"k": 2},
    }
    record.update(overrides)
    return record


class TestValidateSpan:
    def test_accepts_well_formed(self):
        validate_span(_good_span())
        validate_span(_good_span(parent=3, depth=1))

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="must be an object"):
            validate_span([1, 2])

    def test_rejects_missing_field(self):
        record = _good_span()
        del record["dur"]
        with pytest.raises(ValueError, match="missing 'dur'"):
            validate_span(record)

    def test_rejects_extra_field(self):
        with pytest.raises(ValueError, match="unknown fields"):
            validate_span(_good_span(extra=1))

    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="'pid' has type"):
            validate_span(_good_span(pid="42"))

    def test_rejects_bool_masquerading_as_int(self):
        with pytest.raises(ValueError, match="'seq' has type"):
            validate_span(_good_span(seq=True))

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="duration is negative"):
            validate_span(_good_span(dur=-0.1))

    def test_rejects_parent_depth_disagreement(self):
        with pytest.raises(ValueError, match="parent/depth disagree"):
            validate_span(_good_span(parent=3, depth=0))
        with pytest.raises(ValueError, match="parent/depth disagree"):
            validate_span(_good_span(parent=None, depth=1))


class TestLoadTrace:
    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure_trace(str(path))
        with obs.span("store.commit", index=0):
            pass
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n")
        assert len(load_trace(str(path))) == 1

    def test_bad_json_reports_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "x"}\nnot json\n')
        with pytest.raises(ValueError, match=r"t\.jsonl:1: .*missing"):
            load_trace(str(path))
        path.write_text("not json\n")
        with pytest.raises(ValueError, match=r"t\.jsonl:1: not valid JSON"):
            load_trace(str(path))


class TestRenderMetrics:
    def test_empty_snapshot_fallback(self):
        assert render_metrics({}, title="metrics (run)") == (
            "metrics (run): (nothing recorded)"
        )

    def test_tables_and_events(self, metrics_on):
        obs.count("attack.searches", 3)
        obs.gauge("engine.cache.size", 2)
        obs.observe("attack.damage", 10)
        obs.record_event("kernel.demotion", backing="native", reason="test")
        text = render_metrics(obs.snapshot())
        assert "attack.searches" in text
        assert "engine.cache.size" in text
        assert "attack.damage" in text
        assert "kernel.demotion backing='native' reason='test'" in text
        # Catalog descriptions ride along.
        assert "description" in text

    def test_metrics_json_is_stable(self, metrics_on):
        obs.count("attack.searches", 3)
        obs.count("kernel.evaluations", 9)
        first = metrics_json(obs.snapshot())
        second = metrics_json(obs.snapshot())
        assert first == second
        assert first.index('"attack.searches"') < first.index(
            '"kernel.evaluations"'
        )
