"""The ``--stats``/``--trace`` flags and the ``repro stats`` command."""

import json
import os
import random

import pytest

from repro import obs
from repro.analysis import fig2
from repro.cli import main
from repro.core.artifact import save_placement
from repro.core.random_placement import RandomStrategy
from repro.exp.runner import run_experiment
from repro.exp.store import RunStore


@pytest.fixture
def placement_path(tmp_path):
    placement = RandomStrategy(13, 3).place(40, random.Random(3))
    path = str(tmp_path / "p.json")
    save_placement(placement, path)
    return path


def _spec():
    return fig2.default_spec(b_values=(600, 1200), s_values=(2, 3), k_max=4)


class TestStatsFlag:
    def test_attack_stats_reports_to_stderr(self, placement_path, capsys):
        assert main(
            ["attack", placement_path, "--k", "2", "--s", "2", "--stats"]
        ) == 0
        captured = capsys.readouterr()
        assert "attack nodes" in captured.out
        assert "metrics (this invocation)" in captured.err
        assert "attack.searches" in captured.err

    def test_attack_without_stats_stays_quiet(self, placement_path, capsys):
        assert main(["attack", placement_path, "--k", "2", "--s", "2"]) == 0
        assert "metrics" not in capsys.readouterr().err


class TestTraceFlag:
    def test_trace_exports_validatable_jsonl(
        self, placement_path, tmp_path, capsys
    ):
        trace = str(tmp_path / "t.jsonl")
        assert main(
            [
                "attack", placement_path, "--k", "2", "--s", "2",
                "--trace", trace,
            ]
        ) == 0
        assert os.path.exists(trace)
        capsys.readouterr()
        assert main(["stats", trace, "--validate"]) == 0
        assert "schema ok" in capsys.readouterr().out

    def test_stats_renders_profile_from_trace(
        self, placement_path, tmp_path, capsys
    ):
        trace = str(tmp_path / "t.jsonl")
        main(
            [
                "attack", placement_path, "--k", "2", "--s", "2",
                "--trace", trace,
            ]
        )
        capsys.readouterr()
        assert main(["stats", trace]) == 0
        out = capsys.readouterr().out
        assert "deterministic profile" in out
        assert "engine.attack" in out


class TestStatsManifest:
    def _instrumented_run(self, tmp_path):
        obs.set_metrics(True)
        spec = _spec()
        store = RunStore(str(tmp_path / "store"))
        run_experiment(spec, store=store)
        return store.run_path(spec), store

    def test_renders_manifest_obs(self, tmp_path, capsys):
        run_dir, _store = self._instrumented_run(tmp_path)
        assert main(["stats", run_dir]) == 0
        out = capsys.readouterr().out
        assert "manifest obs snapshot" in out
        assert "store.cells_committed" in out

    def test_json_output_parses(self, tmp_path, capsys):
        run_dir, _store = self._instrumented_run(tmp_path)
        assert main(["stats", run_dir, "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["counters"]["attack.searches"] > 0

    def test_store_root_with_one_run_resolves(self, tmp_path, capsys):
        run_dir, _store = self._instrumented_run(tmp_path)
        assert main(["stats", str(tmp_path / "store")]) == 0
        assert "manifest obs snapshot" in capsys.readouterr().out

    def test_uninstrumented_manifest_exits_1_with_hint(self, tmp_path, capsys):
        spec = _spec()
        store = RunStore(str(tmp_path / "store"))
        run_experiment(spec, store=store)
        assert main(["stats", store.run_path(spec)]) == 1
        err = capsys.readouterr().err
        assert "no \"obs\" record" in err
        assert "--stats" in err

    def test_directory_without_manifest_exits_2(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path)]) == 2
        assert "no manifest.json" in capsys.readouterr().err

    def test_missing_trace_file_exits_2(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err
