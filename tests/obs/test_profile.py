"""The deterministic profiler: pure aggregation over span records."""

from repro.obs.profile import build_profile, render_profile


def _span(name, dur, pid=1, seq=0, parent=None, depth=0):
    return {
        "name": name,
        "ts": 0.0,
        "dur": dur,
        "pid": pid,
        "seq": seq,
        "parent": parent,
        "depth": depth,
        "attrs": {},
    }


class TestBuildProfile:
    def test_self_excludes_direct_children(self):
        records = [
            _span("engine.attack", 0.2, seq=2, parent=1, depth=1),
            _span("engine.attack", 0.3, seq=3, parent=1, depth=1),
            _span("runner.shard", 1.0, seq=1),
        ]
        rows = build_profile(records)
        by_name = {row["name"]: row for row in rows}
        assert by_name["runner.shard"]["self"] == 0.5
        assert by_name["runner.shard"]["cum"] == 1.0
        assert by_name["engine.attack"]["calls"] == 2
        assert by_name["engine.attack"]["self"] == 0.5
        assert by_name["engine.attack"]["min"] == 0.2
        assert by_name["engine.attack"]["max"] == 0.3

    def test_sorted_by_self_descending(self):
        records = [
            _span("a.small", 0.1, seq=1),
            _span("b.big", 0.9, seq=2),
        ]
        rows = build_profile(records)
        assert [row["name"] for row in rows] == ["b.big", "a.small"]

    def test_self_clamped_at_zero(self):
        # Clock granularity can make children sum past the parent.
        records = [
            _span("store.commit", 0.6, seq=2, parent=1, depth=1),
            _span("store.commit", 0.6, seq=3, parent=1, depth=1),
            _span("runner.shard", 1.0, seq=1),
        ]
        by_name = {row["name"]: row for row in build_profile(records)}
        assert by_name["runner.shard"]["self"] == 0.0

    def test_parent_links_scoped_by_pid(self):
        # seq collides across processes; pid keeps the trees apart.
        records = [
            _span("runner.shard", 1.0, pid=10, seq=1),
            _span("engine.attack", 0.4, pid=10, seq=2, parent=1, depth=1),
            _span("runner.shard", 2.0, pid=20, seq=1),
            _span("engine.attack", 0.5, pid=20, seq=2, parent=1, depth=1),
        ]
        by_name = {row["name"]: row for row in build_profile(records)}
        assert by_name["runner.shard"]["self"] == (1.0 - 0.4) + (2.0 - 0.5)
        assert by_name["engine.attack"]["cum"] == 0.9

    def test_empty_trace(self):
        assert build_profile([]) == []


class TestRenderProfile:
    def test_renders_table(self):
        rows = build_profile([_span("engine.attack", 0.25, seq=1)])
        text = render_profile(rows)
        assert "deterministic profile" in text
        assert "engine.attack" in text
        assert "0.2500" in text
