"""The metrics registry: catalog, gating, deltas, merge, rollback."""

import pytest

from repro import obs
from repro.obs.metrics import CATALOG, MetricsError


class TestCatalog:
    def test_unknown_instrument_raises(self, metrics_on):
        with pytest.raises(MetricsError, match="unknown instrument"):
            obs.count("no.such.counter")

    def test_kind_mismatch_raises(self, metrics_on):
        with pytest.raises(MetricsError, match="is a counter"):
            obs.gauge("attack.searches", 1)
        with pytest.raises(MetricsError, match="is a histogram"):
            obs.count("attack.damage")

    def test_every_instrument_has_description(self):
        for inst in CATALOG.values():
            assert inst.description
            assert inst.kind in ("counter", "gauge", "histogram")

    def test_always_instruments_are_counters(self):
        # Control-plane instruments are rare discrete occurrences.
        for inst in CATALOG.values():
            if inst.always:
                assert inst.kind == "counter"
                assert not inst.deterministic

    def test_deterministic_set_is_semantic_work(self):
        names = {n for n, i in CATALOG.items() if i.deterministic}
        assert "attack.searches" in names
        assert "kernel.evaluations" in names
        # Topology-dependent instruments must never be pinned.
        assert "attack.memo.hits" not in names
        assert "engine.builds" not in names
        assert "runner.shard_retries" not in names


class TestGating:
    def test_off_by_default(self):
        assert not obs.metrics_enabled()
        obs.count("attack.searches")
        assert obs.counter_value("attack.searches") == 0

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        obs.set_metrics(None)
        assert obs.metrics_enabled()
        obs.count("attack.searches")
        assert obs.counter_value("attack.searches") == 1

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "maybe")
        obs.set_metrics(None)
        with pytest.raises(MetricsError, match="REPRO_METRICS"):
            obs.metrics_enabled()

    def test_always_counters_record_when_off(self):
        assert not obs.metrics_enabled()
        obs.count("runner.shard_retries")
        assert obs.counter_value("runner.shard_retries") == 1

    def test_events_record_when_off(self):
        obs.record_event("kernel.demotion", backing="native", reason="test")
        (entry,) = obs.events()
        assert entry["event"] == "kernel.demotion"
        assert entry["fields"]["backing"] == "native"
        assert entry["seq"] == 1


class TestHistograms:
    def test_power_of_two_buckets(self, metrics_on):
        for value in (0, 1, 2, 3, 8, 9):
            obs.observe("attack.damage", value)
        hist = obs.snapshot()["histograms"]["attack.damage"]
        assert hist["count"] == 6
        assert hist["sum"] == 23
        # 0 -> "0", 1 -> "1", 2..3 -> "2", 8..9 -> "4"
        assert hist["buckets"] == {"0": 1, "1": 1, "2": 2, "4": 2}


class TestDeltas:
    def test_delta_since_drops_zero_entries(self, metrics_on):
        obs.count("attack.searches", 5)
        mark = obs.checkpoint()
        obs.count("kernel.evaluations", 7)
        delta = obs.delta_since(mark)
        assert delta["counters"] == {"kernel.evaluations": 7}

    def test_delta_value(self, metrics_on):
        mark = obs.checkpoint()
        obs.count("runner.shard_retries", 3)
        assert obs.delta_value("runner.shard_retries", mark) == 3

    def test_merge_delta_roundtrip(self, metrics_on):
        obs.count("attack.searches", 2)
        obs.observe("attack.damage", 4)
        mark = obs.checkpoint()
        obs.count("attack.searches", 3)
        obs.observe("attack.damage", 4)
        delta = obs.delta_since(mark)
        obs.rollback(mark)
        obs.merge_delta(delta)
        assert obs.counter_value("attack.searches") == 5
        hist = obs.snapshot()["histograms"]["attack.damage"]
        assert hist["count"] == 2

    def test_deterministic_delta_filters_and_sorts(self, metrics_on):
        mark = obs.checkpoint()
        obs.count("kernel.evaluations", 2)
        obs.count("attack.searches", 1)
        obs.count("attack.memo.hits", 9)  # ops: must not appear
        obs.count("runner.shard_retries")  # ops/always: must not appear
        obs.observe("attack.damage", 3)
        det = obs.deterministic_delta(mark)
        assert list(det["counters"]) == ["attack.searches", "kernel.evaluations"]
        assert list(det["histograms"]) == ["attack.damage"]
        assert set(det) == {"counters", "histograms"}

    def test_rollback_keeps_always_counters(self, metrics_on):
        mark = obs.checkpoint()
        obs.count("attack.searches", 4)
        obs.count("runner.shard_retries", 2)
        obs.rollback(mark)
        assert obs.counter_value("attack.searches") == 0
        assert obs.counter_value("runner.shard_retries") == 2

    def test_rollback_restores_gauges_and_hists(self, metrics_on):
        obs.gauge("engine.cache.size", 1)
        mark = obs.checkpoint()
        obs.gauge("engine.cache.size", 9)
        obs.observe("attack.damage", 5)
        obs.rollback(mark)
        snap = obs.snapshot()
        assert snap["gauges"]["engine.cache.size"] == 1
        assert "attack.damage" not in snap["histograms"]

    def test_reset_zeroes_everything(self, metrics_on):
        obs.count("attack.searches")
        obs.record_event("faults.injected", site="x", kind="error")
        obs.reset_metrics()
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["events"] == []
