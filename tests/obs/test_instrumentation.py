"""The instrument hooks wired through the stack actually count."""

import json
import os
import random

import pytest

from repro import faults, obs
from repro.analysis import fig2
from repro.core import artifact, kernels
from repro.core.adversary import best_attack
from repro.core.batch import AttackCell, engine_for
from repro.core.random_placement import RandomStrategy
from repro.exp.runner import run_experiment
from repro.exp.store import RunStore
from repro.sim import LifetimeSimulator, SimConfig


def _placement(seed=3):
    return RandomStrategy(13, 3).place(40, random.Random(seed))


def _small_fig2_spec():
    return fig2.default_spec(b_values=(600, 1200), s_values=(2, 3), k_max=4)


def _manifest(store, spec):
    path = os.path.join(store.run_path(spec), "manifest.json")
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


class TestAdversaryCounts:
    def test_best_attack_counts_search_and_evaluations(self, metrics_on):
        result = best_attack(_placement(), k=2, s=2, effort="fast")
        assert obs.counter_value("attack.searches") == 1
        assert obs.counter_value("kernel.evaluations") == result.evaluations
        hist = obs.snapshot()["histograms"]["attack.damage"]
        assert hist["count"] == 1
        assert hist["sum"] == result.damage

    def test_local_search_counts_node_moves(self, metrics_on):
        best_attack(_placement(), k=3, s=2, effort="fast")
        snap = obs.snapshot()["counters"]
        # Polish passes re-place every node; swaps only when one moved.
        assert snap["kernel.node_adds"] > 0
        assert snap["kernel.node_removes"] > 0
        assert snap["kernel.node_adds"] >= snap.get("kernel.swaps", 0)

    def test_exact_effort_counts_bnb_moves(self, metrics_on):
        best_attack(_placement(), k=2, s=2, effort="exact")
        snap = obs.snapshot()["counters"]
        # The warm-up incumbent adds without removing; tree moves pair up.
        assert snap["kernel.node_adds"] >= snap["kernel.node_removes"] > 0


class TestEngineCounts:
    def test_memo_hit_skips_the_search_counters(self, metrics_on):
        engine = engine_for(_placement())
        cell = AttackCell(k=2, s=2, effort="fast")
        first = engine.attack(cell, cache=True)
        assert obs.counter_value("attack.searches") == 1
        assert obs.counter_value("attack.memo.misses") == 1
        again = engine.attack(cell, cache=True)
        assert again == first
        assert obs.counter_value("attack.memo.hits") == 1
        # The hit returned upstream of best_attack: no second search.
        assert obs.counter_value("attack.searches") == 1

    def test_engine_cache_counts_builds_and_hits(self, metrics_on):
        placement = _placement()
        engine_for(placement)
        engine_for(placement)
        assert obs.counter_value("engine.builds") == 1
        assert obs.counter_value("engine.cache.hits") == 1
        assert obs.snapshot()["gauges"]["engine.cache.size"] == 1


class TestKernelLadder:
    def test_demotion_counts_even_with_metrics_off(self):
        assert not obs.metrics_enabled()
        kernels.demote_backing("numpy", "test-induced")
        assert obs.counter_value("kernel.demotions") == 1
        (entry,) = [
            e for e in obs.events() if e["event"] == "kernel.demotion"
        ]
        assert entry["fields"] == {"backing": "numpy", "reason": "test-induced"}

    def test_redemotion_is_not_recounted(self):
        kernels.demote_backing("numpy", "first")
        kernels.demote_backing("numpy", "second")
        assert obs.counter_value("kernel.demotions") == 1


class TestStoreCounts:
    def test_commits_counted_and_snapshotted_in_manifest(
        self, metrics_on, tmp_path
    ):
        spec = _small_fig2_spec()
        store = RunStore(str(tmp_path))
        run = run_experiment(spec, store=store)
        assert obs.counter_value("store.cells_committed") == run.computed > 0
        hist = obs.snapshot()["histograms"]["store.commit_bytes"]
        assert hist["count"] == run.computed
        manifest = _manifest(store, spec)
        assert manifest["obs"] == run.obs
        assert manifest["obs"]["counters"]["store.cells_committed"] == run.computed
        assert "attack.searches" in manifest["obs"]["counters"]
        # Ops counters never enter the pinned snapshot.
        assert "engine.builds" not in manifest["obs"]["counters"]

    def test_metrics_off_leaves_manifest_untouched(self, tmp_path):
        spec = _small_fig2_spec()
        store = RunStore(str(tmp_path))
        run = run_experiment(spec, store=store)
        assert run.obs is None
        assert "obs" not in _manifest(store, spec)

    def test_resume_counts_loaded_cells(self, metrics_on, tmp_path):
        spec = _small_fig2_spec()
        store = RunStore(str(tmp_path))
        partial = run_experiment(spec, store=store, limit=4)
        obs.reset_metrics()
        obs.set_metrics(True)
        resumed = run_experiment(spec, store=store, resume=True)
        assert obs.counter_value("store.cells_loaded") == partial.computed
        assert resumed.loaded == partial.computed


class TestRetrySingleSource:
    def test_summary_manifest_and_counter_agree(self, metrics_on, tmp_path):
        plan = faults.FaultPlan.from_dict(
            {
                "seed": 7,
                "rules": [
                    {
                        "site": "runner.shard_start",
                        "kind": "error",
                        "when": {"attempt": 0},
                    }
                ],
            }
        )
        faults.configure(plan)
        mark = obs.checkpoint()
        spec = _small_fig2_spec()
        store = RunStore(str(tmp_path))
        run = run_experiment(spec, store=store, workers=2)
        # One source of truth: the always-on counter feeds RunResult,
        # the summary line, and the manifest faults record alike.
        counted = obs.delta_value("runner.shard_retries", mark)
        assert run.retries == counted >= 1
        assert _manifest(store, spec)["faults"]["shard_retries"] == counted
        assert f"{counted} shard retries" in run.summary()
        assert any(
            e["event"] == "runner.shard_retry" for e in obs.events()
        )

    def test_serial_retries_count_in_process(self, metrics_on, tmp_path):
        plan = faults.FaultPlan.from_dict(
            {
                "seed": 7,
                "rules": [
                    {
                        "site": "runner.shard_start",
                        "kind": "error",
                        "when": {"attempt": 0},
                    }
                ],
            }
        )
        faults.configure(plan)
        mark = obs.checkpoint()
        run = run_experiment(
            _small_fig2_spec(), store=RunStore(str(tmp_path)), workers=1
        )
        counted = obs.delta_value("runner.shard_retries", mark)
        assert run.retries == counted >= 1
        # In-process faults reach the always-on counter directly; a
        # sharded worker's would die with the failed attempt instead.
        assert obs.delta_value("faults.injected", mark) == counted


class TestArtifactFallback:
    @pytest.mark.skipif(
        not kernels.numpy_available(), reason="save_npz needs numpy"
    )
    def test_mmap_fallback_counts_and_warns_once(
        self, metrics_on, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "p.npz")
        artifact.save_npz(_placement(), path)

        def refuse(path, validate):
            raise OSError("no mmap on this filesystem")

        monkeypatch.setattr(artifact, "_load_npz_mmap", refuse)
        monkeypatch.setattr(artifact, "_MMAP_FALLBACK_WARNED", set())
        with pytest.warns(RuntimeWarning, match="falling back"):
            first = artifact.load_npz(path, mmap=True)
        # Second fallback for the same reason: counted, not re-warned.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            again = artifact.load_npz(path, mmap=True)
        assert first == again
        assert obs.counter_value("artifact.mmap_fallback") == 2
        events = [
            e for e in obs.events() if e["event"] == "artifact.mmap_fallback"
        ]
        assert len(events) == 1
        assert "OSError" in events[0]["fields"]["reason"]


class TestSimulatorCounts:
    def test_events_and_strikes(self, metrics_on):
        config = SimConfig(
            n=13, r=3, s=2, k=2, events=200, seed=9, racks=3,
            strike_period=8.0, measure_period=8.0, effort="fast",
        )
        report = LifetimeSimulator(config).run()
        snap = obs.snapshot()["counters"]
        assert snap["sim.events"] == config.events
        assert snap["sim.strikes"] == len(report.strikes)
        assert snap["sim.strikes"] == (
            snap.get("sim.strikes.delta", 0)
            + snap.get("sim.strikes.rebuild", 0)
        )
