"""Observability tests share one invariant: leave no obs state behind."""

import os

import pytest

from repro import faults, obs
from repro.core import kernels
from repro.core.batch import clear_attack_caches


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    """Fresh registry, trace, injector, ladder around every test."""
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_GAIN_BACKING", raising=False)
    obs.reset_metrics()
    obs.set_metrics(None)
    obs.reset_trace()
    faults.clear()
    kernels.restore_backings()
    clear_attack_caches()
    yield
    # The CLI's _arm_obs exports these for forked workers; monkeypatch
    # can't undo writes it didn't make, so pop them here.
    os.environ.pop("REPRO_METRICS", None)
    os.environ.pop("REPRO_TRACE", None)
    obs.reset_metrics()
    obs.set_metrics(None)
    obs.reset_trace()
    faults.clear()
    kernels.restore_backings()
    clear_attack_caches()


@pytest.fixture
def metrics_on():
    obs.set_metrics(True)
    yield
