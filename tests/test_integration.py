"""End-to-end integration tests: catalog -> placement -> cluster -> attack.

These exercise the full pipeline the README advertises, including the
soundness contract that ties everything together: a placement's measured
worst-case availability is never below its analytical lower bound.
"""

import random

import pytest

from repro import (
    ComboStrategy,
    RandomStrategy,
    SimpleStrategy,
    evaluate_availability,
    pr_avail_rnd,
)
from repro.cluster import (
    Cluster,
    WorstCaseInjector,
    majority_quorum_rule,
    run_attack_scenario,
    threshold_rule,
)
from repro.designs.catalog import Existence


class TestQuickstartPath:
    """The README quickstart, as a test."""

    def test_combo_end_to_end(self):
        combo = ComboStrategy(n=71, r=3, s=2, tier=Existence.CONSTRUCTIBLE)
        plan = combo.plan(b=1200, k=3)
        placement = combo.place(b=1200, k=3, plan=plan)
        report = evaluate_availability(placement, k=3, s=2, effort="fast")
        # Heuristic adversary over-estimates availability, so this holds a
        # fortiori; with exact search it is the Lemma-3 guarantee.
        assert report.available >= plan.lower_bound
        assert placement.b == 1200

    def test_simple_vs_random_on_cluster(self):
        n, r, s, k, b = 31, 3, 2, 3, 200
        rule = threshold_rule(s)
        simple_placement = SimpleStrategy(n, r, 1).place(b)
        random_placement = RandomStrategy(n, r).place(b, random.Random(0))
        simple_report = run_attack_scenario(simple_placement, k, rule, effort="auto")
        random_report = run_attack_scenario(random_placement, k, rule, effort="auto")
        # The combinatorial placement's guarantee beats Random's typical
        # worst case at these parameters (a Fig 9 "white cell" regime).
        assert simple_report.objects_available >= random_report.objects_available


class TestSoundnessSweep:
    """Lemma 2/3 soundness across a parameter sweep with exact attacks."""

    @pytest.mark.parametrize(
        "n,r,s,k,b",
        [
            (13, 3, 2, 2, 40),
            (13, 3, 2, 3, 60),
            (13, 3, 3, 3, 80),
            (16, 4, 2, 2, 30),
            (16, 4, 3, 3, 50),
        ],
    )
    def test_combo_bound_holds_exactly(self, n, r, s, k, b):
        combo = ComboStrategy(n, r, s, tier=Existence.CONSTRUCTIBLE)
        plan = combo.plan(b, k)
        placement = combo.place(b, k, plan=plan)
        report = evaluate_availability(placement, k, s, effort="exact")
        assert report.exact
        assert report.available >= plan.lower_bound


class TestClusterScenario:
    def test_majority_quorum_attack(self):
        n, r, b, k = 31, 5, 100, 3
        rule = majority_quorum_rule(r)  # s = 3
        # place() needs blocks, so subsystems must be at the CONSTRUCTIBLE
        # tier (KNOWN suffices only for bound analysis).
        placement = ComboStrategy(n, r, rule.s, tier=Existence.CONSTRUCTIBLE).place(
            b, k
        )
        cluster = Cluster(n, racks=4)
        cluster.apply_placement(placement)
        injector = WorstCaseInjector(effort="fast")
        failed = injector.inject(cluster, k, rule)
        assert len(failed) == k
        assert cluster.availability(rule) >= 0.9

    def test_theoretical_random_prediction_brackets_simulation(self):
        # prAvail is a probabilistic estimate; with the exact adversary the
        # empirical value should land near it (within a few objects).
        n, r, s, k, b = 31, 5, 3, 3, 600
        placement = RandomStrategy(n, r).place(b, random.Random(7))
        report = evaluate_availability(placement, k, s, effort="exact")
        predicted = pr_avail_rnd(n, k, r, s, b)
        assert abs(report.available - predicted) <= 10
