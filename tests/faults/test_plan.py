"""FaultPlan: canonical identity, env parsing, validation."""

import json

import pytest

from repro.faults import (
    FAULT_KINDS,
    SITES,
    FaultPlan,
    FaultPlanError,
    prob_plan,
)


def _plan():
    return FaultPlan.build(
        [
            {"site": "store.commit", "kind": "torn",
             "when": {"index": 3, "hit": 3}, "times": 1},
            {"site": "kernels.dispatch", "kind": "error", "prob": 0.25},
        ],
        seed=42,
    )


class TestIdentity:
    def test_round_trips_through_dict(self):
        plan = _plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_canonical_json_is_order_insensitive(self):
        plan = _plan()
        payload = json.loads(plan.canonical_json())
        # Same content through a differently-ordered payload: same hash.
        reordered = {key: payload[key] for key in reversed(list(payload))}
        assert FaultPlan.from_dict(reordered).plan_hash() == plan.plan_hash()

    def test_distinct_plans_get_distinct_hashes(self):
        plan = _plan()
        reseeded = FaultPlan.build(
            [rule.to_dict() for rule in plan.rules], seed=43
        )
        assert reseeded.plan_hash() != plan.plan_hash()

    def test_hash_is_sha256_hex(self):
        digest = _plan().plan_hash()
        assert len(digest) == 64
        int(digest, 16)


class TestEnvParsing:
    @pytest.mark.parametrize("value", ["", "  ", "off", "0", "none", "OFF"])
    def test_off_values_disable(self, value):
        assert FaultPlan.from_env(value) is None

    def test_prob_shorthand(self):
        plan = FaultPlan.from_env("prob:0.02:1234")
        assert plan.seed == 1234
        assert {rule.site for rule in plan.rules} == set(SITES)
        assert all(rule.kind == "error" for rule in plan.rules)
        assert all(rule.prob == 0.02 for rule in plan.rules)

    def test_prob_shorthand_default_seed(self):
        assert FaultPlan.from_env("prob:0.5").seed == 0

    def test_inline_json(self):
        plan = _plan()
        assert FaultPlan.from_env(plan.canonical_json()) == plan

    def test_plan_file(self, tmp_path):
        plan = _plan()
        path = tmp_path / "plan.json"
        path.write_text(plan.canonical_json())
        assert FaultPlan.from_env(str(path)) == plan

    @pytest.mark.parametrize("value", [
        "prob:not-a-number",
        "prob:0.1:0.5:extra",
        '{"rules": [',
        "/nonexistent/chaos-plan.json",
    ])
    def test_garbage_raises_naming_the_knob(self, value):
        with pytest.raises(FaultPlanError, match="REPRO_CHAOS"):
            FaultPlan.from_env(value)

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultPlan.from_env("prob:1.5")


class TestValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="site"):
            FaultPlan.build([{"site": "nowhere", "kind": "error"}])

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="kind"):
            FaultPlan.build([{"site": SITES[0], "kind": "meltdown"}])

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown"):
            FaultPlan.build(
                [{"site": SITES[0], "kind": "error", "severity": 9}]
            )

    def test_bad_prob_rejected(self):
        with pytest.raises(FaultPlanError, match="prob"):
            FaultPlan.build([{"site": SITES[0], "kind": "error", "prob": 2}])

    def test_bad_times_rejected(self):
        with pytest.raises(FaultPlanError, match="times"):
            FaultPlan.build(
                [{"site": SITES[0], "kind": "error", "times": 0}]
            )

    def test_non_scalar_when_rejected(self):
        with pytest.raises(FaultPlanError, match="scalar"):
            FaultPlan.build(
                [{"site": SITES[0], "kind": "error", "when": {"k": [1]}}]
            )

    def test_every_kind_is_buildable(self):
        for kind in FAULT_KINDS:
            plan = prob_plan(0.5, kind=kind)
            assert all(rule.kind == kind for rule in plan.rules)
