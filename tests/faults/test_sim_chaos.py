"""Simulator under chaos: transient strike faults never change reports."""

import pytest

from repro import faults
from repro.faults import InjectedFault, prob_plan
from repro.sim import LifetimeSimulator, SimConfig


def _config():
    return SimConfig(
        n=13, r=3, s=2, k=2, events=250, seed=9, racks=3,
        strike_period=8.0, measure_period=8.0, effort="fast",
    )


def _report(config):
    report = LifetimeSimulator(config).run().to_dict()
    # Wall-clock fields vary run to run; everything else must not.
    report.pop("wall_seconds", None)
    report.pop("events_per_sec", None)
    return report


def test_transient_strike_faults_are_absorbed_bit_identically():
    clean = _report(_config())

    faults.configure(prob_plan(0.4, seed=5, sites=("sim.strike",)))
    chaotic = _report(_config())
    assert faults.fired_total() > 0  # the plan actually injected faults
    assert chaotic == clean


def test_persistent_strike_faults_exhaust_retries():
    faults.configure(prob_plan(1.0, sites=("sim.strike",)))
    with pytest.raises(InjectedFault):
        LifetimeSimulator(_config()).run()
