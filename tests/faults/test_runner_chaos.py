"""Supervised runner under chaos: retries, watchdog, demotion, identity."""

import json
import os

import pytest

from repro import faults
from repro.analysis import fig2
from repro.core import kernels
from repro.exp.runner import ExperimentError, run_experiment
from repro.exp.store import RunStore
from repro.faults import FaultPlan


def _spec():
    return fig2.default_spec(b_values=(600, 1200), s_values=(2, 3), k_max=4)


def _shard_starts(spec):
    from repro.exp.registry import kernel as experiment_kernel
    from repro.exp.runner import _contiguous_groups

    definition = experiment_kernel(spec.experiment)
    cells = [dict(cell) for cell in definition.expand(spec)]
    return [group.start for group in _contiguous_groups(spec, definition, cells)]


def _chaos_env(plan, monkeypatch):
    """Export the plan so fork-inherited shard workers see it too."""
    monkeypatch.setenv("REPRO_CHAOS", plan.canonical_json())
    faults.clear()  # drop any configure() override; env rules now


class TestCrashRetry:
    def test_crashed_shard_is_redispatched_bit_identically(
        self, tmp_path, monkeypatch
    ):
        spec = _spec()
        start = _shard_starts(spec)[1]
        plan = FaultPlan.build([{
            "site": "runner.shard_start", "kind": "crash",
            "when": {"start": start, "attempt": 0, "mode": "shard"},
            "times": 1,
        }])
        _chaos_env(plan, monkeypatch)
        store = RunStore(str(tmp_path / "chaos"))
        run = run_experiment(spec, workers=3, store=store)
        assert run.complete
        assert run.retries >= 1
        assert f"[{run.retries} shard retries]" in run.summary()

        monkeypatch.delenv("REPRO_CHAOS")
        reference = run_experiment(
            spec, workers=3, store=RunStore(str(tmp_path / "clean"))
        )
        with open(store.cells_file(spec), "rb") as handle:
            chaos_bytes = handle.read()
        with open(
            RunStore(str(tmp_path / "clean")).cells_file(spec), "rb"
        ) as handle:
            clean_bytes = handle.read()
        assert chaos_bytes == clean_bytes
        assert run.result() == reference.result()

    def test_retries_are_recorded_in_the_manifest(
        self, tmp_path, monkeypatch
    ):
        spec = _spec()
        start = _shard_starts(spec)[0]
        plan = FaultPlan.build([{
            "site": "runner.shard_start", "kind": "crash",
            "when": {"start": start, "attempt": 0, "mode": "shard"},
            "times": 1,
        }])
        _chaos_env(plan, monkeypatch)
        store = RunStore(str(tmp_path))
        run = run_experiment(spec, workers=3, store=store)
        manifest_path = os.path.join(store.run_path(spec), "manifest.json")
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["faults"]["shard_retries"] == run.retries >= 1

    def test_fault_free_manifest_has_no_faults_key(self, tmp_path):
        spec = _spec()
        store = RunStore(str(tmp_path))
        run_experiment(spec, workers=3, store=store)
        manifest_path = os.path.join(store.run_path(spec), "manifest.json")
        with open(manifest_path, encoding="utf-8") as handle:
            assert "faults" not in json.load(handle)

    def test_exhausted_retries_fail_the_run(self, monkeypatch):
        spec = _spec()
        start = _shard_starts(spec)[0]
        plan = FaultPlan.build([{
            "site": "runner.shard_start", "kind": "error",
            "when": {"start": start, "mode": "shard"},
        }])
        _chaos_env(plan, monkeypatch)
        with pytest.raises(ExperimentError, match="failed after"):
            run_experiment(spec, workers=3, shard_retries=1)


class TestWatchdog:
    def test_hung_shard_is_killed_and_retried(self, tmp_path, monkeypatch):
        spec = _spec()
        start = _shard_starts(spec)[0]
        plan = FaultPlan.build([{
            "site": "runner.shard_start", "kind": "hang",
            "when": {"start": start, "attempt": 0, "mode": "shard"},
            "times": 1, "args": {"seconds": 60.0},
        }])
        _chaos_env(plan, monkeypatch)
        store = RunStore(str(tmp_path / "chaos"))
        run = run_experiment(
            spec, workers=3, store=store, shard_timeout=1.0
        )
        assert run.complete
        assert run.retries >= 1

        monkeypatch.delenv("REPRO_CHAOS")
        run_experiment(spec, workers=3, store=RunStore(str(tmp_path / "b")))
        with open(store.cells_file(spec), "rb") as handle:
            chaos_bytes = handle.read()
        with open(
            RunStore(str(tmp_path / "b")).cells_file(spec), "rb"
        ) as handle:
            assert handle.read() == chaos_bytes

    def test_bad_timeout_env_is_rejected_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_SHARD_TIMEOUT"):
            run_experiment(_spec(), workers=3)

    def test_bad_retries_env_is_rejected_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_RETRIES", "-1")
        with pytest.raises(ValueError, match="REPRO_SHARD_RETRIES"):
            run_experiment(_spec(), workers=3)


class TestDemotion:
    def test_repeated_watchdog_faults_demote_the_auto_backing(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_GAIN_BACKING", raising=False)
        before = kernels.resolve_gain_backing()
        if before == kernels.GAIN_BACKINGS[-1]:
            pytest.skip("auto already resolves to the python floor")
        spec = _spec()
        start = _shard_starts(spec)[0]
        plan = FaultPlan.build([
            {"site": "runner.shard_start", "kind": "crash",
             "when": {"start": start, "attempt": attempt, "mode": "shard"},
             "times": 1}
            for attempt in (0, 1)
        ])
        _chaos_env(plan, monkeypatch)
        store = RunStore(str(tmp_path))
        run = run_experiment(spec, workers=3, store=store, shard_retries=3)
        assert run.complete
        assert [entry["backing"] for entry in run.demotions] == [before]
        assert "[demoted: " in run.summary()
        assert before in kernels.demoted_backings()

        manifest_path = os.path.join(store.run_path(spec), "manifest.json")
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["faults"]["demotions"] == run.demotions


class TestSerialPath:
    def test_serial_runs_retry_transient_faults(self, monkeypatch):
        spec = _spec()
        plan = FaultPlan.build([{
            "site": "runner.shard_start", "kind": "error",
            "when": {"mode": "serial", "attempt": 0}, "times": 2,
        }])
        _chaos_env(plan, monkeypatch)
        run = run_experiment(spec, workers=1)
        assert run.complete
        assert run.retries >= 1

    def test_real_exceptions_are_not_retried(self, monkeypatch):
        from repro.exp.registry import ExperimentKernel, register_kernel

        calls = []

        def explode(spec, cells):
            calls.append(1)
            raise RuntimeError("genuine bug, not chaos")

        register_kernel(ExperimentKernel(
            name="_test_explode",
            expand=lambda spec: [{"i": 0}],
            group_key=lambda spec, cell: 0,
            run_group=explode,
            assemble=lambda spec, cells, metrics: None,
            render=lambda result: "",
        ))
        from repro.exp.spec import ExperimentSpec

        spec = ExperimentSpec.build("_test_explode", axes={"i": (0,)})
        with pytest.raises(RuntimeError, match="genuine bug"):
            run_experiment(spec, shard_retries=5)
        assert len(calls) == 1
