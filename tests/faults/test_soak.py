"""Soak planner: deterministic schedules pinned to the spec's layout."""

import pytest

from repro.analysis import fig2
from repro.faults.soak import SoakError, build_soak_plan


def _spec():
    return fig2.default_spec(b_values=(600, 1200), s_values=(2, 3), k_max=4)


def _kinds(plan):
    counts = {}
    for rule in plan.rules:
        counts[rule.kind] = counts.get(rule.kind, 0) + 1
    return counts


class TestPlanShape:
    def test_fault_mix_matches_the_request(self):
        plan = build_soak_plan(
            _spec(), crashes=3, torn_writes=2, dispatch_errors=4,
            hangs=1, seed=0,
        )
        assert _kinds(plan) == {
            "crash": 3, "torn": 2, "error": 4, "hang": 1,
        }

    def test_same_seed_same_plan(self):
        one = build_soak_plan(_spec(), crashes=2, torn_writes=2, seed=5)
        two = build_soak_plan(_spec(), crashes=2, torn_writes=2, seed=5)
        assert one.plan_hash() == two.plan_hash()

    def test_different_seed_different_plan(self):
        one = build_soak_plan(_spec(), crashes=2, torn_writes=2, seed=5)
        two = build_soak_plan(_spec(), crashes=2, torn_writes=2, seed=6)
        assert one.plan_hash() != two.plan_hash()

    def test_crash_rules_only_target_supervised_dispatch(self):
        plan = build_soak_plan(_spec(), crashes=4, hangs=1, seed=1)
        for rule in plan.rules:
            if rule.kind in ("crash", "hang"):
                assert dict(rule.when)["mode"] == "shard"

    def test_torn_rules_pin_index_and_hit_delta(self):
        plan = build_soak_plan(_spec(), torn_writes=3, seed=2)
        torn = [dict(rule.when) for rule in plan.rules
                if rule.kind == "torn"]
        assert len(torn) == 3
        previous = 0
        for when in sorted(torn, key=lambda entry: entry["index"]):
            # The hit delta is what makes each rule one-shot across the
            # whole restart loop (see build_soak_plan).
            assert when["hit"] == when["index"] - previous
            assert when["hit"] >= 1
            previous = when["index"]

    def test_empty_spec_is_rejected(self):
        from repro.exp.spec import ExperimentSpec

        empty = ExperimentSpec.build(
            "fig2",
            axes={"b": (19200,), "s": (2,)},
            constants={"n": 71, "r": 3, "x": 1, "k_max": 3,
                       "effort": "fast", "b_cap": 9600},
        )
        with pytest.raises(SoakError, match="zero cells"):
            build_soak_plan(empty, crashes=1)
