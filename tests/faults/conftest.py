"""Chaos tests share one invariant: leave no fault state behind."""

import pytest

from repro import faults
from repro.core import kernels


@pytest.fixture(autouse=True)
def clean_chaos():
    """Fresh injector + ladder before and after every chaos test."""
    faults.clear()
    kernels.restore_backings()
    yield
    faults.clear()
    kernels.restore_backings()
