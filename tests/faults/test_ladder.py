"""Degradation ladder: demotions, auto resolution, forced backend faults."""

import random

import pytest

from repro import faults
from repro.core import kernels
from repro.core.kernels import (
    GAIN_BACKINGS,
    demote_backing,
    demoted_backings,
    make_kernel,
    resolve_gain_backing,
    restore_backings,
)
from repro.core.random_placement import RandomStrategy
from repro.faults import FaultPlan, prob_plan


def _placement():
    return RandomStrategy(11, 3).place(40, random.Random(7))


def _available(backing):
    if backing == "native":
        from repro.core import native

        return native.available()
    if backing == "numpy":
        return kernels.numpy_available()
    return True


class TestDemotionBookkeeping:
    def test_demote_and_restore(self):
        demote_backing("bitset", "test fault")
        assert demoted_backings() == {"bitset": "test fault"}
        restore_backings()
        assert demoted_backings() == {}

    def test_first_reason_wins(self):
        demote_backing("bitset", "first")
        demote_backing("bitset", "second")
        assert demoted_backings()["bitset"] == "first"

    def test_python_floor_is_never_demotable(self):
        with pytest.raises(ValueError, match="floor"):
            demote_backing("python", "nope")

    def test_unknown_backing_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            demote_backing("gpu", "nope")


class TestResolution:
    def test_auto_skips_demoted_rungs(self, monkeypatch):
        monkeypatch.delenv("REPRO_GAIN_BACKING", raising=False)
        ladder = [resolve_gain_backing()]
        while ladder[-1] != GAIN_BACKINGS[-1]:
            demote_backing(ladder[-1], "test demotion")
            ladder.append(resolve_gain_backing())
        # Strictly descending through the (available) ladder to python.
        positions = [GAIN_BACKINGS.index(backing) for backing in ladder]
        assert positions == sorted(set(positions))
        assert ladder[-1] == "python"

    def test_explicit_demoted_choice_raises(self):
        demote_backing("bitset", "watchdog fault")
        with pytest.raises(ValueError, match="demoted"):
            resolve_gain_backing("bitset")


class TestForcedBackendFault:
    def test_backend_fault_degrades_with_identical_damages(
        self, monkeypatch
    ):
        monkeypatch.delenv("REPRO_GAIN_BACKING", raising=False)
        top = resolve_gain_backing()
        if top == GAIN_BACKINGS[-1]:
            pytest.skip("auto already resolves to the python floor")
        placement = _placement()
        oracle = make_kernel(placement, 2, backend="python")

        faults.configure(FaultPlan.build([{
            "site": "kernels.dispatch", "kind": "backend",
            "when": {"hit": 0}, "times": 1,
        }]))
        kernel = make_kernel(placement, 2, backend="gain")
        assert top in demoted_backings()
        nodes = [0, 3, 7]
        assert kernel.damage_for(nodes) == oracle.damage_for(nodes)

    def test_transient_errors_retry_without_demotion(self):
        faults.configure(FaultPlan.build([{
            "site": "kernels.dispatch", "kind": "error",
            "when": {"hit": 0}, "times": 1,
        }]))
        kernel = make_kernel(_placement(), 2, backend="gain")
        assert demoted_backings() == {}
        assert kernel is not None

    def test_persistent_faults_exhaust_the_ladder(self):
        faults.configure(prob_plan(1.0, sites=("kernels.dispatch",)))
        with pytest.raises(RuntimeError, match="after 4 attempts"):
            make_kernel(_placement(), 2, backend="gain")

    def test_bad_arguments_propagate_without_demoting(self, monkeypatch):
        """A ValueError is a caller bug, not a broken backing."""
        monkeypatch.delenv("REPRO_GAIN_BACKING", raising=False)
        with pytest.raises(ValueError, match="s"):
            make_kernel(_placement(), 0, backend="gain")
        assert demoted_backings() == {}

    def test_explicit_backing_never_silently_degrades(self, monkeypatch):
        """A pinned backing propagates real failures; no demotion."""
        available = [b for b in GAIN_BACKINGS[:-1] if _available(b)]
        if not available:
            pytest.skip("only the python floor is available")
        pinned = available[-1]
        faults.configure(FaultPlan.build([{
            "site": "kernels.dispatch", "kind": "backend",
        }]))
        with pytest.raises(Exception):
            make_kernel(_placement(), 2, backend="gain", gain_backing=pinned)
        assert pinned not in demoted_backings()
