"""Satellite: resume-after-SIGKILL byte-identity (subprocess, torn writes).

A sharded experiment runs in a subprocess and is killed mid-append at a
randomized byte offset inside ``cells.jsonl`` (the torn-write fault
writes a strict prefix of one line, fsyncs, and ``os._exit``\\ s with the
SIGKILL-shaped code 137).  The resumed store must end byte-identical to
a run that was never interrupted.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import fig2
from repro.exp.runner import run_experiment
from repro.exp.store import RunStore
from repro.faults import FaultPlan
from repro.faults.soak import TORN_EXIT, _python_env


def _spec():
    return fig2.default_spec(b_values=(600, 1200), s_values=(2, 3), k_max=4)


def _write(path, text):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


@pytest.mark.parametrize("seed,index", [(1, 3), (2, 5), (3, 8)])
def test_sigkill_mid_append_then_resume_is_byte_identical(
    tmp_path, seed, index
):
    spec = _spec()
    spec_path = str(tmp_path / "spec.json")
    _write(spec_path, spec.canonical_json())
    # Tear the run at cell `index`: the decision hash (seeded) picks the
    # byte offset inside that line, so each seed kills at a different
    # randomized mid-line position.
    plan = FaultPlan.build([{
        "site": "store.commit", "kind": "torn",
        "when": {"index": index, "hit": index}, "times": 1,
    }], seed=seed)
    plan_path = str(tmp_path / "plan.json")
    _write(plan_path, plan.canonical_json())
    store_root = str(tmp_path / "store")

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", spec_path,
         "--store", store_root, "--workers", "2", "--chaos", plan_path],
        capture_output=True, text=True, env=_python_env(),
    )
    assert proc.returncode == TORN_EXIT, proc.stderr

    store = RunStore(store_root)
    cells_path = store.cells_file(spec)
    with open(cells_path, "rb") as handle:
        torn_bytes = handle.read()
    # The kill happened mid-line: `index` complete lines plus a strict,
    # non-empty prefix of line `index`.
    assert torn_bytes.count(b"\n") == index
    assert not torn_bytes.endswith(b"\n")

    resumed = run_experiment(spec, store=store, resume=True, workers=2)
    assert resumed.complete
    # The surviving prefix is served; only the shard straddling the torn
    # line recomputes its already-stored cells.
    assert resumed.loaded + resumed.recomputed == index

    reference_store = RunStore(str(tmp_path / "reference"))
    reference = run_experiment(spec, store=reference_store, workers=2)
    with open(cells_path, "rb") as handle:
        resumed_bytes = handle.read()
    with open(reference_store.cells_file(spec), "rb") as handle:
        reference_bytes = handle.read()
    assert resumed_bytes == reference_bytes
    assert resumed.result() == reference.result()


def test_torn_offsets_differ_across_seeds(tmp_path):
    """The randomized mid-line kill offsets actually vary by seed."""
    spec = _spec()
    spec_path = str(tmp_path / "spec.json")
    _write(spec_path, spec.canonical_json())
    sizes = set()
    for seed in (10, 11, 12):
        plan = FaultPlan.build([{
            "site": "store.commit", "kind": "torn",
            "when": {"index": 2, "hit": 2}, "times": 1,
        }], seed=seed)
        plan_path = str(tmp_path / f"plan{seed}.json")
        _write(plan_path, plan.canonical_json())
        store_root = str(tmp_path / f"store{seed}")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", spec_path,
             "--store", store_root, "--workers", "2",
             "--chaos", plan_path],
            capture_output=True, text=True, env=_python_env(),
        )
        assert proc.returncode == TORN_EXIT, proc.stderr
        with open(RunStore(store_root).cells_file(spec), "rb") as handle:
            sizes.add(len(handle.read()))
    assert len(sizes) > 1
