"""Injector semantics: determinism, matching, counters, torn actions."""

import pytest

from repro import faults
from repro.faults import FaultPlan, InjectedFault, TornWrite, prob_plan


def _fires(plan, site, visits, **context):
    """Replay ``visits`` calls against a fresh counter state."""
    faults.configure(plan)
    fired = []
    for _ in range(visits):
        try:
            faults.inject(site, **context)
            fired.append(False)
        except InjectedFault:
            fired.append(True)
    return fired


class TestDisabled:
    def test_no_plan_is_a_no_op(self):
        faults.configure(None)
        assert faults.inject("store.commit", length=10) is None
        assert faults.fired_total() == 0

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "prob:1.0")
        faults.configure(None)
        assert faults.inject("sim.strike", k=3) is None

    def test_clear_restores_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "prob:1.0")
        faults.configure(None)
        faults.clear()
        with pytest.raises(InjectedFault):
            faults.inject("sim.strike", k=3)


class TestMatching:
    def test_when_matches_context_subset(self):
        plan = FaultPlan.build(
            [{"site": "sim.strike", "kind": "error", "when": {"k": 3}}]
        )
        faults.configure(plan)
        assert faults.inject("sim.strike", k=2, attempt=0) is None
        with pytest.raises(InjectedFault):
            faults.inject("sim.strike", k=3, attempt=0)

    def test_missing_when_key_never_matches(self):
        plan = FaultPlan.build(
            [{"site": "sim.strike", "kind": "error", "when": {"rack": 1}}]
        )
        faults.configure(plan)
        assert faults.inject("sim.strike", k=3) is None

    def test_hit_pseudo_key_counts_site_visits(self):
        plan = FaultPlan.build(
            [{"site": "sim.strike", "kind": "error", "when": {"hit": 2}}]
        )
        assert _fires(plan, "sim.strike", 5, k=1) == [
            False, False, True, False, False,
        ]

    def test_times_caps_firing(self):
        plan = FaultPlan.build(
            [{"site": "sim.strike", "kind": "error", "times": 2}]
        )
        assert _fires(plan, "sim.strike", 5, k=1) == [
            True, True, False, False, False,
        ]

    def test_sites_are_independent(self):
        plan = prob_plan(1.0, sites=("store.commit",))
        faults.configure(plan)
        assert faults.inject("sim.strike", k=1) is None
        with pytest.raises(InjectedFault):
            faults.inject("store.commit", length=5)

    def test_first_matching_rule_wins(self):
        plan = FaultPlan.build([
            {"site": "sim.strike", "kind": "error", "times": 1},
            {"site": "sim.strike", "kind": "backend"},
        ])
        faults.configure(plan)
        with pytest.raises(InjectedFault) as first:
            faults.inject("sim.strike", k=1)
        with pytest.raises(InjectedFault) as second:
            faults.inject("sim.strike", k=1)
        assert first.value.kind == "error"
        assert second.value.kind == "backend"


class TestDeterminism:
    def test_same_plan_same_schedule(self):
        plan = prob_plan(0.5, seed=7, sites=("sim.strike",))
        first = _fires(plan, "sim.strike", 50, k=1)
        second = _fires(plan, "sim.strike", 50, k=1)
        assert first == second
        assert any(first) and not all(first)

    def test_different_seed_different_schedule(self):
        one = _fires(prob_plan(0.5, seed=1, sites=("sim.strike",)),
                     "sim.strike", 50, k=1)
        two = _fires(prob_plan(0.5, seed=2, sites=("sim.strike",)),
                     "sim.strike", 50, k=1)
        assert one != two

    def test_context_changes_the_draw(self):
        plan = prob_plan(0.5, seed=7, sites=("sim.strike",))
        one = _fires(plan, "sim.strike", 50, k=1)
        two = _fires(plan, "sim.strike", 50, k=2)
        assert one != two

    def test_fired_counters_account_by_rule(self):
        plan = FaultPlan.build([
            {"site": "sim.strike", "kind": "error", "when": {"hit": 0}},
            {"site": "sim.strike", "kind": "error", "when": {"hit": 2}},
        ])
        _fires(plan, "sim.strike", 4, k=1)
        assert faults.fired_by_rule() == {0: 1, 1: 1}
        assert faults.fired_total() == 2
        faults.reset_counters()
        assert faults.fired_total() == 0


class TestTornAction:
    def test_cut_is_strictly_inside_the_payload(self):
        plan = FaultPlan.build(
            [{"site": "store.commit", "kind": "torn"}], seed=3
        )
        faults.configure(plan)
        action = faults.inject("store.commit", length=100, index=0)
        assert isinstance(action, TornWrite)
        assert 1 <= action.length <= 99
        assert action.exit_code == 137

    def test_cut_offsets_vary_with_seed(self):
        cuts = set()
        for seed in range(8):
            faults.configure(FaultPlan.build(
                [{"site": "store.commit", "kind": "torn"}], seed=seed
            ))
            cuts.add(faults.inject("store.commit", length=1000, index=0).length)
        assert len(cuts) > 1

    def test_args_pin_the_cut_and_exit_code(self):
        plan = FaultPlan.build([{
            "site": "store.commit", "kind": "torn",
            "args": {"bytes": 7, "exit": 9},
        }])
        faults.configure(plan)
        action = faults.inject("store.commit", length=100, index=0)
        assert action.length == 7
        assert action.exit_code == 9
