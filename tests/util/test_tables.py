"""Tests for text-table rendering."""

import pytest

from repro.util.tables import TextTable, format_grid, format_series


class TestTextTable:
    def test_renders_aligned(self):
        table = TextTable(["name", "value"], title="demo")
        table.add_row(["alpha", 1])
        table.add_row(["b", 23456])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in lines[3]  # title, header, separator, first row
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to equal width

    def test_wrong_arity_rejected(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_none_renders_dash(self):
        table = TextTable(["a"])
        table.add_row([None])
        assert table.render().splitlines()[-1].strip() == "-"

    def test_float_formatting(self):
        table = TextTable(["a"])
        table.add_row([3.14159265])
        assert "3.142" in table.render()


class TestFormatGrid:
    def test_shape_checks(self):
        with pytest.raises(ValueError):
            format_grid(["r1"], ["c1"], [[1], [2]])
        with pytest.raises(ValueError):
            format_grid(["r1"], ["c1", "c2"], [[1]])

    def test_contains_labels(self):
        text = format_grid([600, 1200], [2, 3], [[75, 57], [80, 70]], corner="b\\k")
        assert "b\\k" in text
        assert "1200" in text


class TestFormatSeries:
    def test_basic(self):
        text = format_series("k", [1, 2], [("curve", [0.5, 0.25])])
        assert "curve" in text
        assert "0.25" in text
