"""Tests for deterministic RNG derivation."""

import pytest

from repro.util.rng import derive_rng, spawn_seeds


class TestDeriveRng:
    def test_deterministic(self):
        assert derive_rng(1, "a").random() == derive_rng(1, "a").random()

    def test_label_separation(self):
        assert derive_rng(1, "a").random() != derive_rng(1, "b").random()

    def test_seed_separation(self):
        assert derive_rng(1, "a").random() != derive_rng(2, "a").random()

    def test_label_types_mix(self):
        # Numbers and strings namespace independently: "1" vs 1.
        assert derive_rng(0, "1").random() != derive_rng(0, 1).random()

    def test_nested_labels(self):
        assert derive_rng(5, "fig7", 31, 5).random() != derive_rng(
            5, "fig7", 31, 6
        ).random()


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds = spawn_seeds(7, 5, "workers")
        assert len(seeds) == 5
        assert seeds == spawn_seeds(7, 5, "workers")
        assert len(set(seeds)) == 5

    def test_zero_count(self):
        assert spawn_seeds(7, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(7, -1)
