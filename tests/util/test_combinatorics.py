"""Unit and property tests for repro.util.combinatorics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.combinatorics import (
    binom,
    ceil_div,
    falling_factorial,
    is_prime,
    k_subsets,
    lcm_many,
    pairs_within,
    prime_power_decomposition,
    rank_subset,
    unrank_subset,
)


class TestBinom:
    def test_matches_math_comb_in_range(self):
        for n in range(12):
            for k in range(n + 1):
                assert binom(n, k) == math.comb(n, k)

    def test_zero_outside_range(self):
        assert binom(5, 7) == 0
        assert binom(-1, 0) == 0
        assert binom(3, -2) == 0

    def test_paper_values(self):
        # Capacities used throughout the paper's evaluation.
        assert binom(69, 2) // binom(3, 2) == 782  # STS(69) blocks
        assert binom(65, 3) // binom(5, 3) == 4368  # S(3,5,65) blocks
        assert binom(257, 2) == 32896

    @given(st.integers(0, 60), st.integers(0, 60))
    def test_symmetry(self, n, k):
        assert binom(n, k) == binom(n, n - k) if k <= n else binom(n, k) == 0

    @given(st.integers(1, 50), st.integers(0, 50))
    def test_pascal_rule(self, n, k):
        assert binom(n, k) == binom(n - 1, k - 1) + binom(n - 1, k)


class TestFallingFactorial:
    def test_basic(self):
        assert falling_factorial(5, 0) == 1
        assert falling_factorial(5, 2) == 20
        assert falling_factorial(5, 5) == 120

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            falling_factorial(3, -1)

    @given(st.integers(0, 30), st.integers(0, 10))
    def test_relates_to_binom(self, n, k):
        if k <= n:
            assert falling_factorial(n, k) == binom(n, k) * math.factorial(k)


class TestCeilDiv:
    @given(st.integers(-1000, 1000), st.integers(1, 100))
    def test_matches_ceiling(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)

    def test_rejects_bad_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(3, 0)
        with pytest.raises(ValueError):
            ceil_div(3, -2)


class TestLcm:
    def test_basic(self):
        assert lcm_many([2, 3, 4]) == 12
        assert lcm_many([7]) == 7

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            lcm_many([])
        with pytest.raises(ValueError):
            lcm_many([2, 0])


class TestSubsets:
    def test_k_subsets_count(self):
        items = list(range(6))
        assert sum(1 for _ in k_subsets(items, 3)) == 20

    def test_pairs_within(self):
        assert list(pairs_within([3, 1, 2])) == [(1, 2), (1, 3), (2, 3)]

    @given(st.integers(1, 12), st.data())
    def test_rank_unrank_roundtrip(self, n, data):
        k = data.draw(st.integers(1, n))
        rank = data.draw(st.integers(0, binom(n, k) - 1))
        subset = unrank_subset(rank, n, k)
        assert len(subset) == k
        assert all(0 <= e < n for e in subset)
        assert rank_subset(subset, n) == rank

    def test_unrank_out_of_range(self):
        with pytest.raises(ValueError):
            unrank_subset(binom(5, 2), 5, 2)

    def test_colex_order_is_exhaustive(self):
        seen = {unrank_subset(i, 5, 3) for i in range(binom(5, 3))}
        assert len(seen) == 10


class TestPrimes:
    def test_small_primes(self):
        primes = [p for p in range(60) if is_prime(p)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]

    def test_prime_power_decomposition(self):
        assert prime_power_decomposition(8) == (2, 3)
        assert prime_power_decomposition(9) == (3, 2)
        assert prime_power_decomposition(64) == (2, 6)
        assert prime_power_decomposition(12) is None
        assert prime_power_decomposition(1) is None
        assert prime_power_decomposition(13) == (13, 1)

    @given(st.integers(2, 7), st.integers(1, 6))
    def test_decomposition_roundtrip(self, p, m):
        if is_prime(p):
            assert prime_power_decomposition(p**m) == (p, m)
