"""Tests for ASCII line/CDF plotting."""

import pytest

from repro.util.asciiplot import Series, cdf_plot, line_plot


class TestSeries:
    def test_from_pairs(self):
        series = Series.from_pairs("a", [(1, 2), (3, 4)])
        assert series.points == ((1.0, 2.0), (3.0, 4.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Series.from_pairs("a", [])


class TestLinePlot:
    def test_contains_glyphs_and_legend(self):
        text = line_plot(
            [
                Series.from_pairs("up", [(0, 0), (10, 10)]),
                Series.from_pairs("down", [(0, 10), (10, 0)]),
            ],
            width=20,
            height=8,
            title="cross",
            x_label="k",
        )
        assert "cross" in text
        assert "*" in text and "+" in text
        assert "legend: *=up   +=down" in text
        assert text.splitlines()[-2].endswith("k")

    def test_monotone_series_orientation(self):
        # The increasing series' glyph must appear in the top row at the
        # right edge and bottom row at the left edge.
        text = line_plot(
            [Series.from_pairs("up", [(0, 0), (1, 1)])], width=10, height=5
        )
        rows = [line for line in text.splitlines() if "|" in line]
        assert "*" in rows[0].split("|")[1][-2:] or "*" in rows[0]
        assert "*" in rows[-1].split("|")[1][:2]

    def test_axis_bounds_labels(self):
        text = line_plot(
            [Series.from_pairs("s", [(2, 5), (8, 15)])], width=12, height=5
        )
        assert "15" in text
        assert "5" in text
        assert "2" in text and "8" in text

    def test_flat_series_does_not_crash(self):
        text = line_plot([Series.from_pairs("flat", [(0, 3), (5, 3)])])
        assert "flat" in text

    def test_explicit_y_bounds(self):
        text = line_plot(
            [Series.from_pairs("s", [(0, 0.4), (1, 0.6)])],
            y_min=0.0,
            y_max=1.0,
        )
        assert "1" in text.splitlines()[0]

    def test_validation(self):
        series = [Series.from_pairs("s", [(0, 0)])]
        with pytest.raises(ValueError):
            line_plot([])
        with pytest.raises(ValueError):
            line_plot(series, width=4)
        with pytest.raises(ValueError):
            line_plot([Series.from_pairs(str(i), [(0, i)]) for i in range(9)])

    def test_interpolation_dots(self):
        text = line_plot(
            [Series.from_pairs("s", [(0, 0), (10, 10)])], width=30, height=10
        )
        assert "." in text  # Bresenham fill between sparse points


class TestCdfPlot:
    def test_basic(self):
        text = cdf_plot(
            [("gaps", [0.0, 0.0, 0.1, 0.5, 1.0])],
            width=20,
            height=6,
            title="cdf",
        )
        assert "cdf" in text
        assert "legend" in text

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            cdf_plot([("empty", [])])
