"""Unit and property tests for repro.util.intmath."""

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intmath import (
    Rational,
    floor_ratio,
    log_binom,
    log_binom_head,
    log_binom_tail,
    logsumexp,
)

nonzero = st.integers(-50, 50).filter(lambda x: x != 0)


class TestRational:
    @given(st.integers(-50, 50), nonzero, st.integers(-50, 50), nonzero)
    def test_arithmetic_matches_fraction(self, a, b, c, d):
        left = Rational(a, b)
        right = Rational(c, d)
        fl, fr = Fraction(a, b), Fraction(c, d)
        assert Fraction((left + right).numerator, (left + right).denominator) == fl + fr
        assert Fraction((left - right).numerator, (left - right).denominator) == fl - fr
        assert Fraction((left * right).numerator, (left * right).denominator) == fl * fr
        if c != 0:
            quotient = left / right
            assert Fraction(quotient.numerator, quotient.denominator) == fl / fr

    @given(st.integers(-100, 100), nonzero)
    def test_floor_ceil(self, a, b):
        value = Rational(a, b)
        assert value.floor() == math.floor(Fraction(a, b))
        assert value.ceil() == math.ceil(Fraction(a, b))

    def test_zero_denominator_rejected(self):
        with pytest.raises(ZeroDivisionError):
            Rational(1, 0)

    def test_normalization(self):
        assert Rational(2, 4) == Rational(1, 2)
        assert Rational(-1, -2) == Rational(1, 2)
        assert Rational(1, -2) == Rational(-1, 2)

    @given(st.integers(-50, 50), nonzero, st.integers(-50, 50), nonzero)
    def test_ordering(self, a, b, c, d):
        assert (Rational(a, b) < Rational(c, d)) == (Fraction(a, b) < Fraction(c, d))
        assert (Rational(a, b) <= Rational(c, d)) == (Fraction(a, b) <= Fraction(c, d))

    def test_is_integral(self):
        assert Rational(4, 2).is_integral()
        assert not Rational(3, 2).is_integral()

    def test_int_coercion_in_ops(self):
        assert Rational(1, 2) + 1 == Rational(3, 2)
        assert Rational(3, 2) > 1

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            Rational(1, 2) + 0.5  # floats would silently lose exactness


class TestFloorRatio:
    @given(st.integers(-10**9, 10**9), st.integers(1, 10**6))
    def test_matches_floor(self, a, b):
        assert floor_ratio(a, b) == a // b

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            floor_ratio(1, 0)


class TestLogBinom:
    @given(st.integers(0, 300), st.integers(0, 300))
    def test_matches_exact(self, n, k):
        if k <= n:
            assert log_binom(n, k) == pytest.approx(
                math.log(math.comb(n, k)), rel=1e-10
            )
        else:
            assert log_binom(n, k) == float("-inf")


class TestLogSumExp:
    def test_empty_is_neg_inf(self):
        assert logsumexp([]) == float("-inf")
        assert logsumexp([float("-inf")]) == float("-inf")

    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=8))
    def test_matches_direct(self, values):
        expected = math.log(sum(math.exp(v) for v in values))
        assert logsumexp(values) == pytest.approx(expected, rel=1e-9)


class TestBinomTail:
    def exact_tail(self, n, p, f):
        return sum(
            math.comb(n, k) * p**k * (1 - p) ** (n - k) for k in range(f, n + 1)
        )

    @given(
        st.integers(1, 80),
        st.floats(0.01, 0.99),
        st.data(),
    )
    def test_matches_exact_small(self, n, p, data):
        f = data.draw(st.integers(0, n))
        expected = self.exact_tail(n, p, f)
        got = log_binom_tail(n, p, f)
        if expected == 0.0:
            assert got == float("-inf")
        else:
            assert got == pytest.approx(math.log(expected), abs=1e-8)

    def test_boundaries(self):
        assert log_binom_tail(10, 0.5, 0) == 0.0
        assert log_binom_tail(10, 0.5, 11) == float("-inf")
        assert log_binom_tail(10, 0.0, 1) == float("-inf")
        assert log_binom_tail(10, 1.0, 10) == 0.0

    def test_deep_tail_far_beyond_floats(self):
        # P(Bin(38400, 1e-4) >= 60) underflows naive products but must still
        # be finite and ordered in log space.
        a = log_binom_tail(38400, 1e-4, 60)
        b = log_binom_tail(38400, 1e-4, 80)
        assert a > b > float("-inf")

    def test_scipy_agreement(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for n, p, f in [(1000, 0.01, 30), (38400, 0.002, 120), (600, 0.2, 150)]:
            expected = scipy_stats.binom.logsf(f - 1, n, p)
            assert log_binom_tail(n, p, f) == pytest.approx(expected, abs=1e-6)

    @given(st.integers(1, 200), st.floats(0.001, 0.999), st.data())
    def test_head_tail_partition(self, n, p, data):
        f = data.draw(st.integers(1, n))
        tail = log_binom_tail(n, p, f)
        head = log_binom_head(n, p, f - 1)
        total = logsumexp([tail, head])
        assert total == pytest.approx(0.0, abs=1e-7)
