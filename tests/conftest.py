"""Shared fixtures and markers for the test suite."""

import random

import pytest

from repro.core.kernels import BACKENDS, force_backend, numpy_available


def available_backends():
    """Every kernel backend runnable in this environment."""
    return [b for b in BACKENDS if b != "numpy" or numpy_available()]


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (deselect with -m 'not slow')"
    )


@pytest.fixture
def rng():
    """A deterministic RNG; tests needing different streams derive their own."""
    return random.Random(0xC0FFEE)


@pytest.fixture(params=available_backends())
def each_backend(request):
    """Run the test once per kernel backend, pinned via force_backend.

    The context manager unwinds on teardown, so a failing test can never
    leak its backend choice into the rest of the session (the failure mode
    of the old _FORCE_PURE_PYTHON mutable global).
    """
    with force_backend(request.param):
        yield request.param


@pytest.fixture
def pure_python_kernels():
    """Pin the dependency-free kernel for the duration of one test."""
    with force_backend("python"):
        yield
