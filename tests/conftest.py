"""Shared fixtures and markers for the test suite."""

import random

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (deselect with -m 'not slow')"
    )


@pytest.fixture
def rng():
    """A deterministic RNG; tests needing different streams derive their own."""
    return random.Random(0xC0FFEE)
