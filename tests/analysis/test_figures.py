"""Smoke + shape tests for every figure generator (tiny parameterizations)."""

import math

import pytest

from repro.analysis import fig2, fig3, fig4, fig5, fig7, fig8, fig9, fig10, fig11


class TestFig2:
    def test_gap_nonnegative_with_exact_adversary(self):
        result = fig2.generate(
            b_values=(600,), s_values=(2,), k_max=3, effort="exact"
        )
        for cell in result.cells:
            assert cell.exact
            assert cell.gap >= 0  # Lemma 2 soundness, certified

    def test_series_grouping_and_render(self):
        result = fig2.generate(b_values=(600, 1200), s_values=(2, 3), k_max=3)
        curves = result.series()
        assert (2, 2) in curves and (3, 3) in curves
        assert "Fig 2" in result.render()


class TestFig3:
    def test_ratio_at_configured_k_is_100(self):
        result = fig3.generate(systems=((71, 1200),), k_prime_range=(6, 6))
        (point,) = result.points
        assert point.ratio_percent == pytest.approx(100.0)

    def test_ratios_stay_high(self):
        result = fig3.generate(systems=((31, 4800), (71, 1200)))
        for point in result.points:
            assert point.ratio_percent > 95.0
        assert "Fig 3" in result.render()


class TestFig4:
    def test_matches_paper_except_corrupted_cells(self):
        result = fig4.generate()
        mismatches = {
            (c.n, c.r, c.x) for c in result.cells if c.matches_paper is False
        }
        assert mismatches == {(71, 4, 1), (71, 5, 3)}
        assert "DIFFERS" in result.render()

    def test_corrected_values(self):
        result = fig4.generate()
        by_key = {(c.n, c.r, c.x): c for c in result.cells}
        assert by_key[(71, 4, 1)].nx_catalog == 64
        assert by_key[(71, 5, 3)].nx_catalog == 47


class TestFig5:
    def test_small_range_shapes(self):
        result = fig5.generate(combos=((3, 1), (3, 2)), n_range=(50, 120))
        by_x = {cdf.x: cdf for cdf in result.cdfs}
        # Trivial stratum always has zero gap.
        assert by_x[2].fraction_at_most(0.0) == 1.0
        # STS chunks cover nearly everything within 10% even at small n
        # (relative gaps shrink as n grows; the paper's range is [50, 800]).
        assert by_x[1].fraction_at_most(0.1) > 0.95
        assert "capacity-gap" in result.render()

    def test_fig6_mu_relaxation_helps(self):
        strict = fig5.generate(combos=((5, 3),), n_range=(50, 120))
        relaxed = fig5.generate(
            combos=((5, 3),),
            n_range=(50, 120),
            max_mu=5,
            tier=fig5.Existence.DIVISIBILITY,
        )
        assert relaxed.cdfs[0].fraction_at_most(0.05) >= strict.cdfs[
            0
        ].fraction_at_most(0.05)


class TestFig7:
    def test_small_config_runs(self):
        result = fig7.generate(
            configs=((31, 5, 3, (3,)),),
            b_values=(150, 300),
            reps=2,
            effort="fast",
        )
        assert len(result.cells) == 2
        for cell in result.cells:
            assert cell.pr_avail <= cell.b
            assert not math.isnan(cell.error_percent)
        assert "Fig 7" in result.render()


class TestFig8:
    def test_monotone_in_s(self):
        result = fig8.generate(b=2400, systems=((71, 5),), s_values=(1, 3, 5), k_max=6)
        grouped = result.by_s()
        at_k5 = {
            s: dict(entries[0].points)[5] for s, entries in grouped.items()
        }
        assert at_k5[1] < at_k5[3] < at_k5[5]
        assert "Fig 8" in result.render()


class TestFig9:
    def test_small_table_properties(self):
        result = fig9.generate(71, 4, r_values=(2, 3), b_values=(600, 2400))
        table = result.table_for(2, 2)
        assert table is not None
        for cell in table.cells.values():
            assert cell.winner in ("combo", "random", "tie")
            # improvement % capped at 100 from above by definition.
            if not math.isnan(cell.improvement_percent):
                assert cell.improvement_percent <= 100.0
        assert result.table_for(9, 9) is None

    def test_empirical_check_respects_guarantee(self):
        # Small-scale spot check through the batch engine: on the diagonal
        # (attacked at the planned k) measured availability can never
        # undercut lbAvail_co — heuristic measurement only overestimates.
        result = fig9.generate_empirical(
            13, 3, 2, k_values=(2, 3), b_values=(26,), effort="exact"
        )
        assert result.violations() == ()
        assert len(result.cells) == 4  # 2 plans x 2 attack-k per b
        for cell in result.diagonal():
            assert cell.measured >= cell.lower_bound
            assert cell.exact
        assert "empirical" in result.render()

    def test_headline_anchor_combo_wins_r2(self):
        # Paper: for r = s = 2 Combo wins everywhere on the n = 71 table.
        result = fig9.generate(71, 7, r_values=(2,), b_values=(2400,))
        table = result.table_for(2, 2)
        assert all(cell.winner == "combo" for cell in table.cells.values())
        assert "Fig 9" in result.render()


class TestFig10:
    def test_lambda_annotations_grow_with_b(self):
        result = fig10.generate(71, b_values=(600, 2400, 9600))
        lams = [row.simple_lambdas[1] for row in result.rows]
        assert lams == sorted(lams)
        assert lams[-1] > lams[0]

    def test_combo_dominates_pure_strata(self):
        result = fig10.generate(71, b_values=(600, 4800, 38400))
        for row in result.rows:
            for k, combo_value in row.combo_percent.items():
                for x, per_k in row.simple_percent.items():
                    if not math.isnan(per_k[k]) and not math.isnan(combo_value):
                        assert combo_value >= per_k[k] - 1e-9
        assert "Fig 10" in result.render()


class TestFig11:
    def test_decay_and_ordering(self):
        result = fig11.generate(b=2400, systems=((71, 3), (71, 5)), k_max=6)
        for series in result.series:
            fractions = [f for _, f in series.points]
            assert all(a > b for a, b in zip(fractions, fractions[1:]))
        # Higher r decays faster (more replicas per node to hit).
        r3 = dict(result.series[0].points)
        r5 = dict(result.series[1].points)
        assert r5[6] < r3[6]
        assert "Fig 11" in result.render()
