"""Tests for analysis.common knobs and the Appendix-A generator."""

import math

import pytest

from repro.analysis import appendix_a, common


class TestCommonKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_EFFORT", raising=False)
        monkeypatch.delenv("REPRO_REPS", raising=False)
        monkeypatch.delenv("REPRO_B_MAX", raising=False)
        assert common.adversary_effort() == "fast"
        assert common.monte_carlo_reps() == 5
        assert common.object_scale_cap() == 9600

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_EFFORT", "exact")
        monkeypatch.setenv("REPRO_REPS", "20")
        monkeypatch.setenv("REPRO_B_MAX", "38400")
        assert common.adversary_effort() == "exact"
        assert common.monte_carlo_reps() == 20
        assert common.object_scale_cap() == 38400

    def test_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EFFORT", "turbo")
        with pytest.raises(ValueError):
            common.adversary_effort()
        monkeypatch.setenv("REPRO_REPS", "0")
        with pytest.raises(ValueError):
            common.monte_carlo_reps()
        monkeypatch.setenv("REPRO_B_MAX", "-5")
        with pytest.raises(ValueError):
            common.object_scale_cap()

    def test_non_numeric_values_name_the_env_var(self, monkeypatch):
        # A bare int() used to blow up with an anonymous ValueError before
        # the guarded range check ran; the message must name the knob.
        monkeypatch.setenv("REPRO_REPS", "many")
        with pytest.raises(ValueError, match="REPRO_REPS"):
            common.monte_carlo_reps()
        monkeypatch.setenv("REPRO_B_MAX", "huge")
        with pytest.raises(ValueError, match="REPRO_B_MAX"):
            common.object_scale_cap()

    @pytest.mark.parametrize(
        "env,value,getter",
        [
            ("REPRO_EFFORT", "turbo", lambda: common.adversary_effort()),
            ("REPRO_REPS", "many", lambda: common.monte_carlo_reps()),
            ("REPRO_REPS", "", lambda: common.monte_carlo_reps()),
            ("REPRO_REPS", "0", lambda: common.monte_carlo_reps()),
            ("REPRO_B_MAX", "huge", lambda: common.object_scale_cap()),
            ("REPRO_B_MAX", "-5", lambda: common.object_scale_cap()),
            ("REPRO_WORKERS", "lots", lambda: common.attack_workers()),
            ("REPRO_WORKERS", "0", lambda: common.attack_workers()),
            ("REPRO_ATTACK_CACHE", "maybe",
             lambda: common.attack_cache_enabled()),
        ],
    )
    def test_every_knob_rejects_bad_values_by_name(
        self, monkeypatch, env, value, getter
    ):
        monkeypatch.setenv(env, value)
        with pytest.raises(ValueError, match=env):
            getter()

    def test_ladders(self):
        assert common.PAPER_B_LADDER[0] == 600
        assert common.PAPER_B_LADDER[-1] == 38400
        assert common.FIG7_B_LADDER[0] == 150

    def test_percent_guard(self):
        assert common.percent(1, 2) == 50.0
        assert math.isnan(common.percent(1, 0))


class TestAppendixA:
    def test_small_generation(self):
        result = appendix_a.generate(
            systems=((71, 5),), b_values=(600, 38400), k_values=(1, 3, 5)
        )
        assert len(result.cells) == 6
        for cell in result.cells:
            # Lemma 4 bounds prAvail from above (integer rounding slack).
            assert cell.pr_avail <= cell.lemma4_bound + 1
            assert 0 <= cell.lb_simple0 <= cell.b

    def test_paper_regime_random_wins(self):
        result = appendix_a.generate(
            systems=((71, 5),), b_values=(38400,), k_values=(3, 4, 5)
        )
        assert all(cell.margin < 0 for cell in result.cells)
        assert 0 < result.random_win_fraction() <= 1.0

    def test_render(self):
        result = appendix_a.generate(
            systems=((71, 3),), b_values=(600,), k_values=(2,)
        )
        text = result.render()
        assert "Appendix A" in text
        assert "margin" in text
