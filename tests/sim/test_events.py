"""Tests for the discrete-event substrate."""

import pytest

from repro.sim.events import Event, EventKind, EventQueue, SimClockError


def ev(kind=EventKind.MEASURE, **payload):
    return Event(kind=kind, **payload)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(3.0, ev(EventKind.STRIKE))
        queue.push(1.0, ev(EventKind.ARRIVAL))
        queue.push(2.0, ev(EventKind.MEASURE))
        kinds = [queue.pop()[1].kind for _ in range(3)]
        assert kinds == [EventKind.ARRIVAL, EventKind.MEASURE, EventKind.STRIKE]

    def test_same_time_is_fifo(self):
        queue = EventQueue()
        for node in range(5):
            queue.push(1.0, ev(EventKind.NODE_REPAIR, node=node))
        assert [queue.pop()[1].node for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_clock_advances_and_rejects_the_past(self):
        queue = EventQueue()
        queue.push(2.0, ev())
        assert queue.now == 0.0
        time, _event = queue.pop()
        assert time == 2.0
        assert queue.now == 2.0
        with pytest.raises(SimClockError):
            queue.push(1.5, ev())
        queue.push(2.0, ev())  # same instant is fine

    def test_rejects_non_finite_times(self):
        queue = EventQueue()
        with pytest.raises(SimClockError):
            queue.push(float("nan"), ev())
        with pytest.raises(SimClockError):
            queue.push(float("inf"), ev())

    def test_len_bool_peek(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        assert queue.peek_time() is None
        queue.push(4.0, ev())
        assert queue and len(queue) == 1
        assert queue.peek_time() == 4.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_interleaved_push_pop_stays_sorted(self):
        queue = EventQueue()
        queue.push(1.0, ev(EventKind.ARRIVAL))
        queue.push(5.0, ev(EventKind.STRIKE))
        time, _ = queue.pop()
        queue.push(time + 2.0, ev(EventKind.MEASURE))
        times = [queue.pop()[0] for _ in range(2)]
        assert times == [3.0, 5.0]
