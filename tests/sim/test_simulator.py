"""End-to-end tests for the cluster lifetime simulator."""

import pytest

from repro.core.batch import clear_attack_caches
from repro.sim import (
    EngineMirror,
    LifetimeSimulator,
    SimConfig,
    make_repair_policy,
    simulate,
)
from repro.sim.repair import EagerRepair, LazyRepair, NoRepair, choose_repair_target


def strike_tuples(report):
    return [
        (s.time, s.nodes, s.damage, s.live_objects, s.lower_bound, s.certified)
        for s in report.strikes
    ]


def sample_dicts(report):
    return [s.to_dict() for s in report.samples]


BASE = dict(
    n=31, r=3, s=2, k=3, events=500, seed=5, racks=4,
    warmup_arrivals=40, failure_rate=0.03, strike_period=16.0,
    measure_period=8.0,
)


class TestDeterminismAndEquivalence:
    def setup_method(self):
        clear_attack_caches()

    def test_replay_is_bit_for_bit(self):
        first = simulate(**BASE)
        clear_attack_caches()
        second = simulate(**BASE)
        assert strike_tuples(first) == strike_tuples(second)
        assert sample_dicts(first) == sample_dicts(second)
        assert first.event_counts == second.event_counts

    def test_delta_and_rebuild_modes_agree(self):
        delta = simulate(**BASE, repair="lazy", engine_mode="delta")
        clear_attack_caches()
        rebuild = simulate(**BASE, repair="lazy", engine_mode="rebuild")
        assert strike_tuples(delta) == strike_tuples(rebuild)
        assert sample_dicts(delta) == sample_dicts(rebuild)
        assert delta.event_counts == rebuild.event_counts

    def test_seeds_decorrelate(self):
        first = simulate(**{**BASE, "seed": 1})
        second = simulate(**{**BASE, "seed": 2})
        assert strike_tuples(first) != strike_tuples(second)


class TestGuarantees:
    def setup_method(self):
        clear_attack_caches()

    def test_certified_strikes_respect_lemma3(self):
        # No re-replication => the packing certificate holds for the whole
        # run, and every strike must leave at least the Lemma-3 floor.
        report = simulate(**BASE, repair="none")
        assert report.strikes, "expected strikes"
        assert all(s.certified for s in report.strikes)
        assert report.bound_violations() == 0

    def test_exact_effort_also_respects_lemma3(self):
        report = simulate(
            n=13, r=3, s=2, k=2, events=200, seed=3, warmup_arrivals=24,
            strike_period=12.0, measure_period=8.0, effort="exact",
        )
        assert report.strikes
        assert report.bound_violations() == 0

    def test_rereplication_voids_the_certificate(self):
        report = simulate(**BASE, repair="eager")
        assert report.strikes
        assert not report.strikes[-1].certified
        assert report.certified_strikes() < len(report.strikes)

    def test_eager_repair_drains_backlog_without_node_recovery(self):
        # With repair_time far beyond the horizon and no strikes, the
        # handful of random failures never recover — backlog can only
        # drain through re-replication.
        scenario = {
            **BASE, "repair_time": 10_000.0, "strike_period": 0.0,
            "failure_rate": 0.02,
        }
        eager = simulate(**scenario, repair="eager")
        degraded = simulate(**scenario, repair="none")
        assert eager.event_counts.get("node-fail", 0) > 0
        assert eager.samples[-1].repair_backlog == 0
        assert degraded.samples[-1].repair_backlog > 0
        assert eager.min_availability() >= degraded.min_availability()

    def test_lazy_repair_skips_fast_recoveries(self):
        # Grace longer than the downtime: nodes always repair first, so no
        # replica ever moves and the certificate survives — including when
        # a node fails again before an older grace check fires (the epoch
        # stamp marks that check stale).
        report = simulate(
            **{**BASE, "repair_time": 2.0}, repair="lazy", repair_grace=50.0,
        )
        assert report.event_counts.get("re-replicate", 0) > 0
        assert all(s.certified for s in report.strikes)
        assert report.bound_violations() == 0


class TestSimulatorMechanics:
    def setup_method(self):
        clear_attack_caches()

    def test_event_budget_is_respected(self):
        report = simulate(**{**BASE, "events": 123})
        assert report.events == 123
        assert sum(report.event_counts.values()) == 123

    def test_rack_failures_fire(self):
        report = simulate(
            **{**BASE, "failure_rate": 0.0}, rack_failure_rate=0.02,
        )
        assert report.event_counts.get("rack-fail", 0) > 0

    def test_departure_heavy_churn_survives_empty_population(self):
        report = simulate(
            n=13, r=3, s=2, k=2, events=150, seed=9,
            arrival_probability=0.1, warmup_arrivals=2,
            strike_period=4.0, measure_period=4.0,
        )
        assert report.events == 150

    def test_report_round_trips_to_dict(self):
        report = simulate(**{**BASE, "events": 120})
        payload = report.to_dict()
        assert payload["schema"] == "sim_report/v1"
        assert payload["events"] == 120
        assert len(payload["samples"]) == len(report.samples)
        assert len(payload["strikes"]) == len(report.strikes)
        assert payload["bound_violations"] == report.bound_violations()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimConfig(n=1).validate()
        with pytest.raises(ValueError):
            SimConfig(k=0).validate()
        with pytest.raises(ValueError):
            SimConfig(k=31).validate()
        with pytest.raises(ValueError):
            SimConfig(s=9).validate()
        with pytest.raises(ValueError):
            SimConfig(events=0).validate()
        with pytest.raises(ValueError):
            SimConfig(engine_mode="warp").validate()
        with pytest.raises(ValueError):
            LifetimeSimulator(SimConfig(repair="sometimes"))

    def test_simulator_exposes_live_state(self):
        sim = LifetimeSimulator(SimConfig(**{**BASE, "events": 200}))
        report = sim.run()
        assert report.samples and report.strikes
        assert sim.adaptive.num_objects == len(sim.cluster.objects)
        # The delta mirror tracks the same population the cluster hosts.
        assert sim.mirror.size == len(sim.cluster.objects)


class TestEngineMirror:
    def test_flush_batches_churn_into_one_delta(self):
        mirror = EngineMirror(9)
        for obj_id in range(6):
            mirror.add(obj_id, (obj_id % 9, (obj_id + 1) % 9, (obj_id + 2) % 9))
        engine = mirror.flush()
        assert engine.placement.b == 6
        assert mirror.deltas_applied == 0  # cold build, no delta yet
        mirror.remove(1)
        mirror.add(10, (0, 3, 6))
        mirror.replace(4, (1, 4, 7))
        assert mirror.flush() is engine
        assert mirror.deltas_applied == 1
        assert engine.placement.b == 6
        assert engine.placement.replica_sets[mirror.slot_of(10)] == frozenset(
            {0, 3, 6}
        )
        assert engine.placement.replica_sets[mirror.slot_of(4)] == frozenset(
            {1, 4, 7}
        )

    def test_pending_add_then_remove_cancels(self):
        mirror = EngineMirror(6)
        mirror.add(0, (0, 1, 2))
        mirror.add(1, (1, 2, 3))
        mirror.remove(1)
        engine = mirror.flush()
        assert engine.placement.b == 1

    def test_emptying_population_drops_the_engine(self):
        mirror = EngineMirror(6)
        mirror.add(0, (0, 1, 2))
        assert mirror.flush() is not None
        mirror.remove(0)
        assert mirror.flush() is None
        mirror.add(1, (2, 3, 4))
        engine = mirror.flush()
        assert engine is not None and engine.placement.b == 1

    def test_unknown_ids_raise(self):
        mirror = EngineMirror(6)
        with pytest.raises(KeyError):
            mirror.remove(5)
        with pytest.raises(KeyError):
            mirror.replace(5, (0, 1, 2))
        mirror.add(5, (0, 1, 2))
        with pytest.raises(KeyError):
            mirror.add(5, (0, 1, 2))


class TestRepairPolicies:
    def test_factory(self):
        assert isinstance(make_repair_policy("eager"), EagerRepair)
        assert isinstance(make_repair_policy("lazy", grace=2.0), LazyRepair)
        assert isinstance(make_repair_policy("none"), NoRepair)
        with pytest.raises(ValueError):
            make_repair_policy("later")

    def test_timing(self):
        assert EagerRepair().rereplicate_at(5.0, 0) == 5.0
        assert EagerRepair(detection_delay=1.5).rereplicate_at(5.0, 0) == 6.5
        assert LazyRepair(grace=4.0).rereplicate_at(5.0, 0) == 9.0
        assert NoRepair().rereplicate_at(5.0, 0) is None
        with pytest.raises(ValueError):
            LazyRepair(grace=-1.0)

    def test_choose_repair_target_is_deterministic(self):
        loads = [5, 1, 1, 9, 0]
        up = [True, True, True, True, False]
        # Node 4 is down, node 1 ties node 2 on load: lowest id wins.
        assert choose_repair_target(loads, up, exclude=[]) == 1
        assert choose_repair_target(loads, up, exclude=[1]) == 2
        assert choose_repair_target(
            loads, [False] * 5, exclude=[]
        ) is None
