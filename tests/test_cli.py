"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestFigureCommand:
    def test_fig4(self, capsys):
        assert main(["figure", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4" in out
        assert "DIFFERS" in out

    def test_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        assert "Fig 3" in capsys.readouterr().out

    def test_fig11(self, capsys):
        assert main(["figure", "fig11"]) == 0
        assert "Fig 11" in capsys.readouterr().out

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_list_catalog(self, capsys):
        assert main(["figure", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig9a", "fig11", "appendix_a"):
            assert name in out
        assert "Lemma-4" in out  # descriptions, not just names

    def test_no_name_and_no_list_is_an_error(self, capsys):
        assert main(["figure"]) == 2
        assert "--list" in capsys.readouterr().err


class TestRunCommand:
    def test_list_catalog(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "Monte-Carlo" in out

    def test_unknown_name_lists_known_up_front(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err and "fig2" in err

    def test_run_with_store_resume_and_rerender(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        args = ["run", "fig4", "--store", store]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "Fig 4" in first.out
        assert "0 loaded" in first.err

        # Second invocation re-renders entirely from the store.
        assert main(args) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "0 computed" in second.err

    def test_run_limit_then_resume(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        assert main(["run", "fig4", "--store", store, "--limit", "2"]) == 0
        partial = capsys.readouterr()
        assert "partial" in partial.err
        assert main(["run", "fig4", "--store", store, "--resume"]) == 0
        resumed = capsys.readouterr()
        assert "Fig 4" in resumed.out
        assert "0 recomputed" in resumed.err

    def test_run_spec_json(self, tmp_path, capsys):
        from repro.analysis import fig11

        spec = fig11.default_spec(systems=((71, 3),), k_max=3)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert main(["run", str(path), "--no-store"]) == 0
        out = capsys.readouterr().out
        assert "Fig 11" in out

    def test_run_bad_spec_json(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"experiment": "nope"}))
        assert main(["run", str(path), "--no-store"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_missing_target(self, capsys):
        assert main(["run"]) == 2
        assert "--list" in capsys.readouterr().err

    def test_run_spec_missing_constants_fails_cleanly(self, tmp_path, capsys):
        # Kernel-level spec errors surface as `run: ...`, not a traceback.
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"experiment": "fig2"}))
        assert main(["run", str(path), "--no-store"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("run:") and "constant" in err

    def test_run_bad_workers_fails_cleanly(self, capsys):
        assert main(["run", "fig4", "--no-store", "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err


class TestPlaceCommand:
    def test_random_to_stdout(self, capsys):
        assert main([
            "place", "--strategy", "random",
            "--n", "13", "--r", "3", "--b", "20", "--seed", "5",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n"] == 13
        assert len(payload["replica_sets"]) == 20

    def test_simple_with_lambda_note(self, capsys):
        assert main([
            "place", "--strategy", "simple",
            "--n", "13", "--r", "3", "--b", "30", "--x", "1",
        ]) == 0
        captured = capsys.readouterr()
        assert "lambda=2" in captured.err
        payload = json.loads(captured.out)
        assert payload["strategy"].startswith("Simple")

    def test_combo_to_file(self, tmp_path, capsys):
        target = tmp_path / "placement.json"
        assert main([
            "place", "--n", "13", "--r", "3", "--b", "26",
            "--s", "2", "--k", "3", "--output", str(target),
        ]) == 0
        captured = capsys.readouterr()
        assert "lower_bound" in captured.err
        payload = json.loads(target.read_text())
        assert len(payload["replica_sets"]) == 26


class TestAttackCommand:
    def test_roundtrip(self, tmp_path, capsys):
        target = tmp_path / "placement.json"
        main([
            "place", "--strategy", "random",
            "--n", "12", "--r", "3", "--b", "24",
            "--seed", "1", "--output", str(target),
        ])
        capsys.readouterr()
        assert main([
            "attack", str(target), "--k", "3", "--s", "2",
            "--effort", "exact",
        ]) == 0
        out = capsys.readouterr().out
        assert "certified optimal: yes" in out
        assert "objects killed:" in out

    def test_batched_k_grid_with_kernel_choice(self, tmp_path, capsys):
        target = tmp_path / "placement.json"
        main([
            "place", "--strategy", "random",
            "--n", "12", "--r", "3", "--b", "24",
            "--seed", "1", "--output", str(target),
        ])
        capsys.readouterr()
        assert main([
            "attack", str(target), "--k", "2", "--k", "3", "--s", "2",
            "--effort", "exact", "--kernel", "python", "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "--- k=2 ---" in out
        assert "--- k=3 ---" in out
        assert out.count("certified optimal: yes") == 2


class TestAuditCommand:
    def test_audit_placement_file(self, tmp_path, capsys):
        target = tmp_path / "placement.json"
        main([
            "place", "--strategy", "random",
            "--n", "12", "--r", "3", "--b", "24",
            "--seed", "2", "--output", str(target),
        ])
        capsys.readouterr()
        assert main([
            "audit", str(target), "--k", "3", "--k", "4", "--s", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "placement audit" in out
        assert "k=3, s=2" in out
        assert "k=4, s=2" in out


class TestSimulateCommand:
    def test_lifetime_run_renders_report(self, capsys):
        assert main([
            "simulate", "--events", "300", "--seed", "4",
            "--failure-rate", "0.02", "--repair", "lazy",
        ]) == 0
        out = capsys.readouterr().out
        assert "Lifetime summary" in out
        assert "Availability over time" in out
        assert "Adversary strikes" in out

    def test_json_archive(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main([
            "simulate", "--events", "200", "--strike-period", "12",
            "--json", str(target),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(target.read_text())
        assert payload["schema"] == "sim_report/v1"
        assert payload["events"] == 200
        assert payload["bound_violations"] == 0

    def test_engine_modes_agree(self, capsys):
        args = ["simulate", "--events", "250", "--seed", "6",
                "--measure-period", "0"]
        assert main(args + ["--engine", "delta"]) == 0
        delta_out = capsys.readouterr().out
        assert main(args + ["--engine", "rebuild"]) == 0
        rebuild_out = capsys.readouterr().out
        # Identical strike tables; only the engine-mode line differs.
        strip = lambda text: [
            line for line in text.splitlines() if "engine mode" not in line
            and "wall seconds" not in line and "events/sec" not in line
        ]
        assert strip(delta_out) == strip(rebuild_out)


class TestBoundsCommand:
    def test_fig9_cell(self, capsys):
        assert main([
            "bounds", "--n", "71", "--r", "3", "--s", "2",
            "--b", "2400", "--k", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "lbAvail_co" in out
        assert "prAvail_rnd" in out
        assert "winner: combo" in out


class TestCatalogCommand:
    def test_single_order(self, capsys):
        assert main(["catalog", "--r", "4", "--t", "3", "--v", "26"]) == 0
        assert "KNOWN" in capsys.readouterr().out

    def test_order_list(self, capsys):
        assert main([
            "catalog", "--r", "3", "--t", "2", "--max-v", "30",
            "--tier", "constructible",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 7 9 13 15 19 21 25 27" in out
        assert "largest: 27" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestNpzArtifacts:
    def test_place_npz_attack_matches_json(self, tmp_path, capsys):
        json_target = tmp_path / "placement.json"
        npz_target = tmp_path / "placement.npz"
        for target in (json_target, npz_target):
            assert main([
                "place", "--strategy", "random",
                "--n", "12", "--r", "3", "--b", "24",
                "--seed", "1", "--output", str(target),
            ]) == 0
        capsys.readouterr()
        assert main([
            "attack", str(json_target), "--k", "3", "--s", "2",
            "--effort", "exact",
        ]) == 0
        json_out = capsys.readouterr().out
        assert main([
            "attack", str(npz_target), "--k", "3", "--s", "2",
            "--effort", "exact",
        ]) == 0
        npz_out = capsys.readouterr().out
        # Identical placement structure => bit-identical attack output.
        assert npz_out == json_out
        assert "certified optimal: yes" in npz_out

    def test_place_format_npz_appends_extension(self, tmp_path, capsys):
        target = tmp_path / "placement"
        assert main([
            "place", "--strategy", "random",
            "--n", "12", "--r", "3", "--b", "10",
            "--seed", "3", "--format", "npz", "--output", str(target),
        ]) == 0
        err = capsys.readouterr().err
        assert "placement.npz" in err
        from repro.core.artifact import load_placement

        loaded = load_placement(str(target) + ".npz")
        assert loaded.b == 10

    def test_format_npz_without_output_fails(self, capsys):
        assert main([
            "place", "--strategy", "random",
            "--n", "12", "--r", "3", "--b", "10", "--format", "npz",
        ]) == 2
        assert "--output" in capsys.readouterr().err

    def test_audit_accepts_npz(self, tmp_path, capsys):
        target = tmp_path / "placement.npz"
        main([
            "place", "--strategy", "random",
            "--n", "12", "--r", "3", "--b", "24",
            "--seed", "2", "--output", str(target),
        ])
        capsys.readouterr()
        assert main([
            "audit", str(target), "--k", "3", "--s", "2",
        ]) == 0
        assert "placement audit" in capsys.readouterr().out

    def test_simulate_writes_final_placement(self, tmp_path, capsys):
        target = tmp_path / "final.npz"
        assert main([
            "simulate", "--events", "220", "--measure-period", "0",
            "--final-placement", str(target),
        ]) == 0
        err = capsys.readouterr().err
        assert "final placement" in err
        from repro.core.artifact import load_placement

        snapshot = load_placement(str(target))
        assert snapshot.b >= 1
        assert snapshot.strategy == "snapshot"
