"""Spec identity: canonical hashing, round-trips, validation."""

import json
import subprocess
import sys

import pytest

from repro.exp.spec import (
    ExperimentSpec,
    SpecError,
    cartesian_cells,
    cell_key,
)


def _spec(**overrides):
    payload = dict(
        experiment="fig2",
        axes={"b": (600, 1200), "s": (2, 3)},
        constants={"n": 71, "r": 3, "x": 1, "k_max": 4,
                   "effort": "fast", "b_cap": 9600},
    )
    payload.update(overrides)
    return ExperimentSpec.build(**payload)


class TestIdentity:
    def test_declaration_order_never_changes_the_hash(self):
        forward = ExperimentSpec.build(
            "fig2",
            axes={"b": (600, 1200), "s": (2, 3)},
            constants={"n": 71, "x": 1},
        )
        reversed_order = ExperimentSpec.build(
            "fig2",
            axes={"s": (2, 3), "b": (600, 1200)},
            constants={"x": 1, "n": 71},
        )
        assert forward == reversed_order
        assert forward.spec_hash() == reversed_order.spec_hash()
        assert cartesian_cells(forward) == cartesian_cells(reversed_order)

    def test_hash_is_stable_across_processes(self):
        import os

        import repro

        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        spec = _spec()
        script = (
            "import json, sys\n"
            f"sys.path.insert(0, {src_root!r})\n"
            "from repro.exp.spec import ExperimentSpec\n"
            f"spec = ExperimentSpec.from_dict(json.loads({spec.canonical_json()!r}))\n"
            "print(spec.spec_hash())\n"
        )
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        assert child.stdout.strip() == spec.spec_hash()

    def test_any_mutation_changes_the_hash(self):
        base = _spec().spec_hash()
        assert _spec(axes={"b": (600, 1200, 2400), "s": (2, 3)}).spec_hash() != base
        assert _spec(axes={"b": (1200, 600), "s": (2, 3)}).spec_hash() != base
        assert _spec(experiment="fig7").spec_hash() != base
        mutated_constants = dict(
            n=71, r=3, x=2, k_max=4, effort="fast", b_cap=9600
        )
        assert _spec(constants=mutated_constants).spec_hash() != base

    def test_axis_value_order_is_semantic_but_name_order_is_not(self):
        # Value order changes expansion (and so identity); name order is
        # canonicalized away.
        a = _spec(axes={"b": (600, 1200), "s": (2, 3)})
        b = _spec(axes={"b": (1200, 600), "s": (2, 3)})
        assert cartesian_cells(a) != cartesian_cells(b)
        assert a.spec_hash() != b.spec_hash()


class TestRoundTrip:
    def test_dict_round_trip_preserves_identity(self):
        spec = _spec()
        clone = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_nested_lists_freeze_to_tuples(self):
        spec = ExperimentSpec.build(
            "fig7",
            axes={"b": [150, 300]},
            constants={"configs": [[31, 5, 3, [3, 4]]]},
        )
        assert spec.constant("configs") == ((31, 5, 3, (3, 4)),)
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_accessors(self):
        spec = _spec()
        assert spec.axis("b") == (600, 1200)
        assert spec.axis_names() == ("b", "s")
        assert spec.constant("n") == 71
        assert spec.constant("missing", 42) == 42
        with pytest.raises(SpecError):
            spec.axis("nope")
        with pytest.raises(SpecError):
            spec.constant("nope")


class TestValidation:
    def test_non_json_values_rejected(self):
        with pytest.raises(SpecError):
            ExperimentSpec.build("fig2", axes={"b": (object(),)})
        with pytest.raises(SpecError):
            ExperimentSpec.build("fig2", constants={"fn": len})

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError):
            ExperimentSpec.build("fig2", axes={"b": ()})

    def test_newer_version_rejected(self):
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict(
                {"experiment": "fig2", "version": 99}
            )

    def test_missing_experiment_rejected(self):
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict({"axes": {}})


class TestCells:
    def test_cell_key_is_order_independent(self):
        assert cell_key({"b": 600, "s": 2}) == cell_key({"s": 2, "b": 600})

    def test_cartesian_cells_iterate_sorted_axis_names(self):
        spec = ExperimentSpec.build("fig2", axes={"s": (2, 3), "b": (600,)})
        assert cartesian_cells(spec) == [
            {"b": 600, "s": 2},
            {"b": 600, "s": 3},
        ]
