"""Affinity pool: deterministic routing, bit-identity with fork and serial."""

import pytest

from repro import faults
from repro.analysis import fig2
from repro.exp.registry import kernel as experiment_kernel
from repro.exp.runner import (
    _affinity_plan,
    _contiguous_groups,
    _env_shard_mode,
    run_experiment,
)
from repro.exp.store import RunStore
from repro.faults import FaultPlan


def _spec():
    return fig2.default_spec(b_values=(600, 1200), s_values=(2, 3), k_max=4)


def _cells_and_groups(spec):
    definition = experiment_kernel(spec.experiment)
    cells = [dict(cell) for cell in definition.expand(spec)]
    return definition, cells, _contiguous_groups(spec, definition, cells)


def _store_bytes(store, spec):
    with open(store.cells_file(spec), "rb") as handle:
        return handle.read()


class TestShardModeKnob:
    def test_default_is_pool(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_MODE", raising=False)
        assert _env_shard_mode() == "pool"
        monkeypatch.setenv("REPRO_SHARD_MODE", "")
        assert _env_shard_mode() == "pool"

    def test_explicit_modes_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_MODE", "fork")
        assert _env_shard_mode() == "fork"
        monkeypatch.setenv("REPRO_SHARD_MODE", "pool")
        assert _env_shard_mode() == "pool"

    def test_garbage_is_rejected_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_MODE", "bogus")
        with pytest.raises(ValueError, match="REPRO_SHARD_MODE"):
            run_experiment(_spec(), workers=2)


class TestAffinityPlan:
    def test_plan_is_deterministic_and_covers_every_shard_once(self):
        spec = _spec()
        definition, cells, groups = _cells_and_groups(spec)
        first = _affinity_plan(spec, definition, cells, groups, 3)
        second = _affinity_plan(spec, definition, cells, groups, 3)
        assert first == second
        dispatched = sorted(o for bucket in first for o in bucket)
        assert dispatched == list(range(len(groups)))

    def test_affinity_classes_are_never_split_across_workers(self):
        # fig2's affinity key is b: every shard attacking one placement
        # must land on one worker so its engine cache serves them all.
        spec = _spec()
        definition, cells, groups = _cells_and_groups(spec)
        assert definition.affinity is not None
        plan = _affinity_plan(spec, definition, cells, groups, 3)
        home = {}
        for slot, bucket in enumerate(plan):
            for ordinal in bucket:
                group = groups[ordinal]
                key = definition.affinity(
                    spec, group.key, cells[group.start:group.end]
                )
                assert home.setdefault(key, slot) == slot

    def test_single_slot_gets_everything(self):
        spec = _spec()
        definition, cells, groups = _cells_and_groups(spec)
        (bucket,) = _affinity_plan(spec, definition, cells, groups, 1)
        assert sorted(bucket) == list(range(len(groups)))

    def test_fig7_declares_placement_affinity(self):
        from repro.analysis import fig7  # noqa: F401 - registers the kernel

        assert experiment_kernel("fig7").affinity is not None


class TestBitIdentity:
    @pytest.mark.parametrize("workers", (2, 3))
    def test_pool_matches_serial(self, workers, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_MODE", "pool")
        spec = _spec()
        serial = run_experiment(
            spec, workers=1, store=RunStore(str(tmp_path / "serial"))
        )
        pool_store = RunStore(str(tmp_path / "pool"))
        pooled = run_experiment(spec, workers=workers, store=pool_store)
        assert pooled.result() == serial.result()
        assert pooled.metrics == serial.metrics
        assert _store_bytes(pool_store, spec) == _store_bytes(
            RunStore(str(tmp_path / "serial")), spec
        )

    def test_pool_and_fork_stores_are_byte_identical(
        self, tmp_path, monkeypatch
    ):
        spec = _spec()
        monkeypatch.setenv("REPRO_SHARD_MODE", "fork")
        fork_store = RunStore(str(tmp_path / "fork"))
        forked = run_experiment(spec, workers=3, store=fork_store)
        monkeypatch.setenv("REPRO_SHARD_MODE", "pool")
        pool_store = RunStore(str(tmp_path / "pool"))
        pooled = run_experiment(spec, workers=3, store=pool_store)
        assert pooled.result() == forked.result()
        assert _store_bytes(pool_store, spec) == _store_bytes(fork_store, spec)


class TestPoolSupervision:
    def _shard_starts(self, spec):
        _, cells, groups = _cells_and_groups(spec)
        return [group.start for group in groups]

    def _chaos_env(self, plan, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", plan.canonical_json())
        faults.clear()  # drop any configure() override; env rules now

    def test_crashed_worker_is_replaced_and_shard_retried(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHARD_MODE", "pool")
        spec = _spec()
        start = self._shard_starts(spec)[1]
        plan = FaultPlan.build([{
            "site": "runner.shard_start", "kind": "crash",
            "when": {"start": start, "attempt": 0, "mode": "shard"},
            "times": 1,
        }])
        self._chaos_env(plan, monkeypatch)
        store = RunStore(str(tmp_path / "chaos"))
        run = run_experiment(spec, workers=3, store=store)
        assert run.complete
        assert run.retries >= 1

        monkeypatch.delenv("REPRO_CHAOS")
        faults.clear()
        clean = RunStore(str(tmp_path / "clean"))
        reference = run_experiment(spec, workers=3, store=clean)
        assert _store_bytes(store, spec) == _store_bytes(clean, spec)
        assert run.result() == reference.result()

    def test_injected_error_is_retried_without_killing_the_worker(
        self, tmp_path, monkeypatch
    ):
        # An in-band error posts a result and keeps the persistent worker
        # alive; the shard retries on the same slot after backoff.
        monkeypatch.setenv("REPRO_SHARD_MODE", "pool")
        spec = _spec()
        start = self._shard_starts(spec)[0]
        plan = FaultPlan.build([{
            "site": "runner.shard_start", "kind": "error",
            "when": {"start": start, "attempt": 0, "mode": "shard"},
            "times": 1,
        }])
        self._chaos_env(plan, monkeypatch)
        store = RunStore(str(tmp_path / "chaos"))
        run = run_experiment(spec, workers=2, store=store)
        assert run.complete
        assert run.retries >= 1

        monkeypatch.delenv("REPRO_CHAOS")
        faults.clear()
        clean = RunStore(str(tmp_path / "clean"))
        run_experiment(spec, workers=2, store=clean)
        assert _store_bytes(store, spec) == _store_bytes(clean, spec)

    def test_hung_pool_worker_trips_the_watchdog(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_MODE", "pool")
        spec = _spec()
        start = self._shard_starts(spec)[0]
        plan = FaultPlan.build([{
            "site": "runner.shard_start", "kind": "hang",
            "when": {"start": start, "attempt": 0, "mode": "shard"},
            "times": 1, "args": {"seconds": 60.0},
        }])
        self._chaos_env(plan, monkeypatch)
        store = RunStore(str(tmp_path / "chaos"))
        run = run_experiment(
            spec, workers=3, store=store, shard_timeout=1.0
        )
        assert run.complete
        assert run.retries >= 1

        monkeypatch.delenv("REPRO_CHAOS")
        faults.clear()
        clean = RunStore(str(tmp_path / "clean"))
        run_experiment(spec, workers=3, store=clean)
        assert _store_bytes(store, spec) == _store_bytes(clean, spec)
