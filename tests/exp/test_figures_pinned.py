"""Pinned pre-refactor outputs: the ported figures must be bit-identical.

The digests below were captured from the hand-written figure loops
*before* the port onto :mod:`repro.exp` (fixed seeds, default env knobs:
``REPRO_EFFORT=fast``, ``REPRO_REPS=5``, ``REPRO_B_MAX=9600``). Every
entry pins ``sha256(result.render())[:16]`` for a small parameterization,
and the attack-backed figures are additionally pinned through a sharded
(``workers=2``) engine run — worker count must never perturb a result.
"""

import hashlib

import pytest

from repro.analysis import appendix_a, fig2, fig3, fig5, fig7, fig8, fig9, fig10, fig11
from repro.exp.runner import run_experiment


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@pytest.fixture(autouse=True)
def _default_knobs(monkeypatch):
    for knob in ("REPRO_EFFORT", "REPRO_REPS", "REPRO_B_MAX",
                 "REPRO_WORKERS", "REPRO_ATTACK_CACHE"):
        monkeypatch.delenv(knob, raising=False)


class TestAttackBackedFigures:
    """Simulation figures: pinned serially and through the sharded runner."""

    def test_fig2_small(self):
        spec = fig2.default_spec(b_values=(600, 1200), s_values=(2, 3), k_max=4)
        serial = fig2.generate(b_values=(600, 1200), s_values=(2, 3), k_max=4)
        assert _digest(serial.render()) == "e01e0db2cfd4b61f"
        sharded = run_experiment(spec, workers=2).result()
        assert sharded == serial

    def test_fig7_small(self):
        spec = fig7.default_spec(
            configs=((31, 5, 3, (3, 4)),), b_values=(150, 300), reps=2
        )
        serial = fig7.generate(
            configs=((31, 5, 3, (3, 4)),), b_values=(150, 300), reps=2
        )
        assert _digest(serial.render()) == "e0d640b829d49e2c"
        sharded = run_experiment(spec, workers=2).result()
        assert sharded == serial

    def test_fig7_small_values(self):
        result = fig7.generate(
            configs=((31, 5, 3, (3, 4)),), b_values=(150, 300), reps=2
        )
        pinned = [
            (31, 5, 3, 3, 150, 146, 146.5, 0.5, 2),
            (31, 5, 3, 4, 150, 142, 144.5, 0.5, 2),
            (31, 5, 3, 3, 300, 295, 296.0, 0.0, 2),
            (31, 5, 3, 4, 300, 289, 291.0, 1.0, 2),
        ]
        assert [
            (c.n, c.r, c.s, c.k, c.b, c.pr_avail, c.avg_avail,
             c.stdev_avail, c.repetitions)
            for c in result.cells
        ] == pinned

    def test_fig2_small_values(self):
        result = fig2.generate(b_values=(600,), s_values=(2, 3), k_max=4)
        pinned = [
            (600, 2, 2, 599, 599, False),
            (600, 2, 3, 597, 597, False),
            (600, 2, 4, 594, 594, False),
            (600, 3, 3, 599, 599, False),
            (600, 3, 4, 599, 598, False),
        ]
        assert [
            (c.b, c.s, c.k, c.avail, c.lower_bound, c.exact)
            for c in result.cells
        ] == pinned


class TestAnalyticFigures:
    """Deterministic DP/catalog figures pinned at small parameters."""

    def test_fig3_small(self):
        result = fig3.generate(systems=((31, 4800), (71, 1200)))
        assert _digest(result.render()) == "5fbe9d9caf5c5ee1"

    def test_fig5_small(self):
        result = fig5.generate(combos=((3, 1), (3, 2)), n_range=(50, 120))
        assert _digest(result.render()) == "76c00c5680ff87c8"

    def test_fig8_small(self):
        result = fig8.generate(systems=((71, 3), (71, 5)), k_max=6)
        assert _digest(result.render()) == "c11f9e63c163cbeb"

    def test_fig9a_small(self):
        result = fig9.generate(71, 7, r_values=(2, 3), b_values=(600, 1200))
        assert _digest(result.render()) == "a198ed13f8904e47"

    def test_fig10_small(self):
        result = fig10.generate(31, b_values=(600, 1200))
        assert _digest(result.render()) == "5141f97df123e74b"

    def test_fig11_small(self):
        result = fig11.generate(systems=((71, 3), (71, 5)), k_max=6)
        assert _digest(result.render()) == "bdd62e6fe5402190"

    def test_appendix_a_small(self):
        result = appendix_a.generate(
            systems=((71, 5),), b_values=(600, 2400), k_values=(1, 2, 3)
        )
        assert _digest(result.render()) == "409c2e96c2f312cd"

    def test_analytic_sharding_is_invisible(self):
        spec = fig9.default_spec(71, 7, r_values=(2, 3), b_values=(600, 1200))
        assert (
            run_experiment(spec, workers=2).result()
            == run_experiment(spec, workers=1).result()
        )
