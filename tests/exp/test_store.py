"""Run-store integrity: prefixes, torn writes, checksums, reuse policy."""

import json
import os

import pytest

from repro.exp.spec import ExperimentSpec
from repro.exp.store import RunStore, RunStoreError

CELLS = [{"i": 0}, {"i": 1}, {"i": 2}]


def _spec():
    return ExperimentSpec.build("fig4", axes={"n": (31,), "r": (3,)})


def _fill(state, cells, start=0):
    for index in range(start, len(cells)):
        state.append(cells[index], {"value": index * 10})
    state.flush()


class TestLifecycle:
    def test_fresh_open_empty_prefix(self, tmp_path):
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        assert state.load_prefix(CELLS) == []
        assert not state.complete

    def test_append_finalize_reload(self, tmp_path):
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        _fill(state, CELLS)
        state.finalize(len(CELLS))

        reopened = store.open_run(_spec())
        assert reopened.complete
        loaded = reopened.load_prefix(CELLS)
        assert loaded == [{"value": 0}, {"value": 10}, {"value": 20}]

    def test_complete_runs_survive_non_resume_open(self, tmp_path):
        # "Re-renders never recompute": completeness is never discarded.
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        _fill(state, CELLS)
        state.finalize(len(CELLS))
        assert store.open_run(_spec(), resume=False).complete

    def test_partial_run_restarts_without_resume(self, tmp_path):
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        state.append(CELLS[0], {"value": 0})
        state.close()
        fresh = store.open_run(_spec(), resume=False)
        assert fresh.load_prefix(CELLS) == []

    def test_partial_run_keeps_prefix_with_resume(self, tmp_path):
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        state.append(CELLS[0], {"value": 0})
        state.close()
        resumed = store.open_run(_spec(), resume=True)
        assert resumed.load_prefix(CELLS) == [{"value": 0}]


class TestCorruption:
    def test_torn_trailing_line_is_truncated(self, tmp_path):
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        _fill(state, CELLS[:2])
        state.close()
        with open(state.cells_path, "ab") as handle:
            handle.write(b'{"cell": {"i": 2}, "met')  # killed mid-write
        resumed = store.open_run(_spec(), resume=True)
        assert resumed.load_prefix(CELLS) == [{"value": 0}, {"value": 10}]
        # The torn bytes are gone: appends continue cleanly.
        with open(state.cells_path, "rb") as handle:
            assert handle.read().endswith(b"}\n")

    def test_newline_terminated_garbage_tail_is_quarantined(self, tmp_path):
        # A fully written (newline-terminated) line that fails to parse
        # was damaged after the fact. In a partial run the damage is
        # quarantined (kept for post-mortems) and truncated away, loudly.
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        _fill(state, CELLS[:2])
        state.close()
        with open(state.cells_path, "ab") as handle:
            handle.write(b"not json at all\n")
        resumed = store.open_run(_spec(), resume=True)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert resumed.load_prefix(CELLS) == [{"value": 0}, {"value": 10}]
        quarantine = os.path.join(state.path, "cells.quarantine.0")
        with open(quarantine, "rb") as handle:
            assert handle.read() == b"not json at all\n"
        # The cells file is a clean prefix again: appends continue.
        with open(state.cells_path, "rb") as handle:
            assert handle.read().endswith(b"}\n")

    def test_mid_file_corruption_quarantines_from_the_damage(self, tmp_path):
        # Damage in the middle of a partial run costs everything from the
        # first bad line on — the prefix before it survives.
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        _fill(state, CELLS)
        state.close()
        with open(state.cells_path, "rb") as handle:
            first_line_len = len(handle.readline())
        with open(state.cells_path, "r+b") as handle:
            handle.seek(first_line_len + 3)
            handle.write(b"\xff\xff")
        resumed = store.open_run(_spec(), resume=True)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert resumed.load_prefix(CELLS) == [{"value": 0}]

    def test_corruption_in_a_complete_run_is_still_an_error(self, tmp_path):
        # Quarantine-and-truncate is for partial runs only: a complete
        # run's manifest pinned a checksum, so damage is reported, never
        # silently repaired by dropping cells.
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        _fill(state, CELLS)
        state.finalize(len(CELLS))
        with open(state.cells_path, "r+b") as handle:
            handle.seek(3)
            handle.write(b"\xff\xff")
        with pytest.raises(RunStoreError, match="checksum"):
            store.open_run(_spec()).load_prefix(CELLS)

    def test_checksum_mismatch_on_complete_run(self, tmp_path):
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        _fill(state, CELLS)
        state.finalize(len(CELLS))
        line = json.dumps(
            {"cell": dict(CELLS[0]), "metrics": {"value": 999}},
            sort_keys=True, separators=(",", ":"),
        )
        with open(state.cells_path, "r+", encoding="utf-8") as handle:
            handle.write(line)
        with pytest.raises(RunStoreError, match="checksum"):
            store.open_run(_spec()).load_prefix(CELLS)

    def test_cell_mismatch_is_an_error(self, tmp_path):
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        _fill(state, CELLS)
        state.close()
        wrong = [{"i": 9}, {"i": 1}, {"i": 2}]
        with pytest.raises(RunStoreError, match="does not match"):
            store.open_run(_spec(), resume=True).load_prefix(wrong)

    def test_extra_lines_rejected(self, tmp_path):
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        _fill(state, CELLS)
        state.close()
        with pytest.raises(RunStoreError, match="more lines"):
            store.open_run(_spec(), resume=True).load_prefix(CELLS[:2])

    def test_spec_hash_mismatch_rejected(self, tmp_path):
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        state.close()
        manifest = json.loads(open(state.manifest_path).read())
        manifest["spec_sha256"] = "0" * 64
        with open(state.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        with pytest.raises(RunStoreError, match="hash"):
            store.open_run(_spec())


class TestLocking:
    def test_concurrent_open_of_one_run_is_rejected(self, tmp_path):
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        with pytest.raises(RunStoreError, match="in use"):
            store.open_run(_spec())
        state.close()
        store.open_run(_spec()).close()  # released -> reopenable

    def test_leftover_lock_file_never_blocks(self, tmp_path):
        # The flock is kernel state, dropped when its holder exits; the
        # file (and whatever pid it records) is diagnostic residue only.
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        state.close()
        with open(os.path.join(state.path, "lock"), "w") as handle:
            handle.write("garbage")
        store.open_run(_spec(), resume=True).close()

    def test_finalize_releases_the_lock(self, tmp_path):
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        _fill(state, CELLS)
        state.finalize(len(CELLS))
        # finalize is terminal: the completed run is immediately
        # reopenable without an explicit close.
        assert store.open_run(_spec()).complete

    def test_failed_open_releases_the_lock(self, tmp_path):
        store = RunStore(str(tmp_path))
        state = store.open_run(_spec())
        state.close()
        manifest = json.loads(open(state.manifest_path).read())
        manifest["format"] = "bogus"
        with open(state.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        with pytest.raises(RunStoreError, match="unknown run format"):
            store.open_run(_spec())
        # The lock did not leak: a second attempt fails the same way, not
        # with "in use by live process".
        with pytest.raises(RunStoreError, match="unknown run format"):
            store.open_run(_spec())


class TestAddressing:
    def test_distinct_specs_get_distinct_directories(self, tmp_path):
        store = RunStore(str(tmp_path))
        a = _spec()
        b = ExperimentSpec.build("fig4", axes={"n": (71,), "r": (3,)})
        assert store.run_path(a) != store.run_path(b)
        assert os.path.basename(store.run_path(a)) == a.spec_hash()[:16]
