"""Runner semantics: sharding determinism, resume, limits, store reuse."""

import pytest

from repro.analysis import fig2, fig4
from repro.exp.registry import ExperimentKernel, figure_spec, register_kernel
from repro.exp.runner import ExperimentError, run_experiment
from repro.exp.spec import ExperimentSpec
from repro.exp.store import RunStore


def _small_fig2_spec():
    return fig2.default_spec(b_values=(600, 1200), s_values=(2, 3), k_max=4)


class TestDeterminism:
    def test_serial_and_sharded_runs_are_bit_identical(self):
        spec = _small_fig2_spec()
        serial = run_experiment(spec, workers=1)
        sharded = run_experiment(spec, workers=3)
        assert serial.metrics == sharded.metrics
        assert serial.result() == sharded.result()

    def test_wrapper_equals_engine(self):
        spec = fig4.default_spec()
        assert run_experiment(spec).result() == fig4.generate()


class TestStoreIntegration:
    def test_interrupted_run_resumes_missing_cells_only(self, tmp_path):
        spec = _small_fig2_spec()
        store = RunStore(str(tmp_path / "a"))
        partial = run_experiment(spec, store=store, limit=4)
        assert not partial.complete
        assert partial.computed >= 4  # stopped at the next shard boundary
        assert partial.recomputed == 0

        resumed = run_experiment(spec, store=store, resume=True)
        assert resumed.complete
        assert resumed.loaded == partial.computed
        assert resumed.computed == len(resumed.cells) - partial.computed
        assert resumed.recomputed == 0

    def test_resumed_store_bytes_match_uninterrupted_run(self, tmp_path):
        spec = _small_fig2_spec()
        interrupted = RunStore(str(tmp_path / "a"))
        run_experiment(spec, store=interrupted, limit=4)
        resumed = run_experiment(spec, store=interrupted, resume=True)

        uninterrupted = RunStore(str(tmp_path / "b"))
        reference = run_experiment(spec, store=uninterrupted)

        with open(interrupted.cells_file(spec), "rb") as handle:
            resumed_bytes = handle.read()
        with open(uninterrupted.cells_file(spec), "rb") as handle:
            reference_bytes = handle.read()
        assert resumed_bytes == reference_bytes
        assert resumed.result() == reference.result()

    def test_torn_tail_resume_is_still_bit_identical(self, tmp_path):
        spec = _small_fig2_spec()
        store = RunStore(str(tmp_path / "a"))
        run_experiment(spec, store=store, limit=4)
        with open(store.cells_file(spec), "ab") as handle:
            handle.write(b'{"cell": {"torn": ')  # kill mid-append
        resumed = run_experiment(spec, store=store, resume=True)
        assert resumed.complete

        reference = run_experiment(
            spec, store=RunStore(str(tmp_path / "b"))
        )
        assert resumed.metrics == reference.metrics

    def test_complete_store_serves_rerenders_without_recompute(self, tmp_path):
        spec = _small_fig2_spec()
        store = RunStore(str(tmp_path))
        first = run_experiment(spec, store=store)
        again = run_experiment(spec, store=store)
        assert first.complete and again.complete
        assert again.computed == 0
        assert again.loaded == len(again.cells)
        assert again.result() == first.result()

    def test_sharded_run_with_store_matches_serial_store(self, tmp_path):
        spec = _small_fig2_spec()
        serial_store = RunStore(str(tmp_path / "serial"))
        sharded_store = RunStore(str(tmp_path / "sharded"))
        run_experiment(spec, workers=1, store=serial_store)
        run_experiment(spec, workers=3, store=sharded_store)
        with open(serial_store.cells_file(spec), "rb") as handle:
            serial_bytes = handle.read()
        with open(sharded_store.cells_file(spec), "rb") as handle:
            sharded_bytes = handle.read()
        assert serial_bytes == sharded_bytes

    def test_corrupt_partial_store_is_quarantined_and_resumed(self, tmp_path):
        # Damaged bytes in a partial run are quarantined and truncated
        # away; the resume serves the surviving prefix and recomputes the
        # rest, ending byte-identical to an undamaged run.
        import os

        spec = _small_fig2_spec()
        store = RunStore(str(tmp_path / "a"))
        run_experiment(spec, store=store, limit=4)
        with open(store.cells_file(spec), "ab") as handle:
            handle.write(b"newline-terminated garbage\n")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            resumed = run_experiment(spec, store=store, resume=True)
        assert resumed.complete
        run_dir = os.path.dirname(store.cells_file(spec))
        assert os.path.exists(os.path.join(run_dir, "cells.quarantine.0"))

        reference = run_experiment(spec, store=RunStore(str(tmp_path / "b")))
        with open(store.cells_file(spec), "rb") as handle:
            resumed_bytes = handle.read()
        with open(
            RunStore(str(tmp_path / "b")).cells_file(spec), "rb"
        ) as handle:
            reference_bytes = handle.read()
        assert resumed_bytes == reference_bytes
        assert resumed.result() == reference.result()

    def test_mutated_spec_gets_a_fresh_run(self, tmp_path):
        store = RunStore(str(tmp_path))
        spec = _small_fig2_spec()
        run_experiment(spec, store=store)
        widened = fig2.default_spec(
            b_values=(600, 1200, 2400), s_values=(2, 3), k_max=4
        )
        assert widened.spec_hash() != spec.spec_hash()
        second = run_experiment(widened, store=store, resume=True)
        assert second.loaded == 0  # new identity, no stale reuse
        assert second.complete


class TestEdgeExpansions:
    def test_zero_cell_run_completes_and_reloads(self, tmp_path):
        # Every b above the cap: the spec legitimately expands to nothing.
        spec = ExperimentSpec.build(
            "fig2",
            axes={"b": (19200,), "s": (2,)},
            constants={"n": 71, "r": 3, "x": 1, "k_max": 3,
                       "effort": "fast", "b_cap": 9600},
        )
        store = RunStore(str(tmp_path))
        run = run_experiment(spec, store=store)
        assert run.complete and run.cells == []
        assert run.result().cells == ()
        again = run_experiment(spec, store=store)
        assert again.complete and again.computed == 0

    def test_fig9_empty_rs_table_assembles(self):
        # k_max < s leaves (r=3, s=3) with no cells; the table must come
        # back empty, as the pre-refactor generator produced it.
        from repro.analysis import fig9

        result = fig9.generate(71, 2, r_values=(2, 3), b_values=(600,))
        empty = result.table_for(3, 3)
        assert empty is not None and empty.cells == {}
        assert result.table_for(2, 2).cells


class TestContracts:
    def test_incomplete_result_assembly_is_an_error(self, tmp_path):
        spec = _small_fig2_spec()
        partial = run_experiment(
            spec, store=RunStore(str(tmp_path)), limit=1
        )
        with pytest.raises(ExperimentError, match="incomplete"):
            partial.result()

    def test_non_contiguous_groups_rejected(self):
        register_kernel(
            ExperimentKernel(
                name="_test_interleaved",
                expand=lambda spec: [{"g": 0}, {"g": 1}, {"g": 0}],
                group_key=lambda spec, cell: cell["g"],
                run_group=lambda spec, cells: [{} for _ in cells],
                assemble=lambda spec, cells, metrics: None,
                render=lambda result: "",
            )
        )
        spec = ExperimentSpec.build("_test_interleaved", axes={"i": (0,)})
        with pytest.raises(ExperimentError, match="contiguous"):
            run_experiment(spec)

    def test_wrong_metric_count_rejected(self):
        register_kernel(
            ExperimentKernel(
                name="_test_short",
                expand=lambda spec: [{"i": 0}, {"i": 1}],
                group_key=lambda spec, cell: 0,
                run_group=lambda spec, cells: [{}],
                assemble=lambda spec, cells, metrics: None,
                render=lambda result: "",
            )
        )
        spec = ExperimentSpec.build("_test_short", axes={"i": (0,)})
        with pytest.raises(ExperimentError, match="metric dicts"):
            run_experiment(spec)

    def test_unknown_figure_name_lists_catalog(self):
        with pytest.raises(ValueError, match="fig2"):
            figure_spec("fig99")
