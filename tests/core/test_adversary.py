"""Tests for the worst-case adversary ladder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adversary import (
    AttackResult,
    BranchAndBoundAdversary,
    ExhaustiveAdversary,
    GreedyAdversary,
    LocalSearchAdversary,
    best_attack,
    damage,
)
from repro.core.placement import Placement
from repro.core.random_placement import RandomStrategy


def random_placement(n, r, b, seed):
    return RandomStrategy(n, r).place(b, random.Random(seed))


class TestDamage:
    def test_counts_threshold(self):
        p = Placement.from_replica_sets(5, [(0, 1, 2), (2, 3, 4), (0, 3, 4)])
        assert damage(p, [0, 1], 2) == 1
        assert damage(p, [0, 1], 1) == 2
        assert damage(p, [2, 3, 4], 3) == 1
        assert damage(p, [], 1) == 0


class TestExhaustive:
    def test_finds_known_optimum(self):
        # Two objects share nodes {0,1}: failing those kills both at s=2.
        p = Placement.from_replica_sets(
            6, [(0, 1, 2), (0, 1, 3), (2, 4, 5), (3, 4, 5)]
        )
        result = ExhaustiveAdversary().attack(p, 2, 2)
        assert result.damage == 2
        assert set(result.nodes) == {0, 1}
        assert result.exact

    def test_subset_limit_guard(self):
        p = random_placement(40, 3, 20, 0)
        with pytest.raises(ValueError):
            ExhaustiveAdversary(max_subsets=10).attack(p, 5, 2)

    def test_k_validated(self):
        p = random_placement(10, 3, 20, 0)
        with pytest.raises(ValueError):
            ExhaustiveAdversary().attack(p, 0, 2)


class TestCrossEngineAgreement:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 3), st.data())
    def test_bnb_matches_exhaustive(self, seed, k, data):
        n = data.draw(st.integers(6, 12))
        r = data.draw(st.integers(2, min(4, n)))
        s = data.draw(st.integers(1, min(r, k)))
        p = random_placement(n, r, 25, seed)
        exhaustive = ExhaustiveAdversary().attack(p, k, s)
        bnb = BranchAndBoundAdversary().attack(p, k, s)
        assert bnb.exact
        assert bnb.damage == exhaustive.damage

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_heuristics_never_exceed_exact(self, seed):
        p = random_placement(10, 3, 30, seed)
        exact = ExhaustiveAdversary().attack(p, 3, 2)
        greedy = GreedyAdversary().attack(p, 3, 2)
        local = LocalSearchAdversary(restarts=2, rng=random.Random(seed)).attack(
            p, 3, 2
        )
        assert greedy.damage <= exact.damage
        assert greedy.damage <= local.damage <= exact.damage
        assert not greedy.exact and not local.exact

    def test_damage_reported_matches_nodes(self):
        p = random_placement(12, 3, 40, 5)
        for engine in (
            ExhaustiveAdversary(),
            GreedyAdversary(),
            LocalSearchAdversary(restarts=1),
            BranchAndBoundAdversary(),
        ):
            result = engine.attack(p, 3, 2)
            assert len(result.nodes) == 3
            assert damage(p, result.nodes, 2) == result.damage


class TestBackendLadder:
    """Every kernel backend drives the full adversary ladder identically."""

    def test_exhaustive_agrees_across_backends(self, each_backend):
        p = random_placement(10, 3, 30, 1)
        result = ExhaustiveAdversary().attack(p, 3, 2)
        assert result.damage == ExhaustiveAdversary().attack(p, 3, 2).damage
        assert damage(p, result.nodes, 2) == result.damage

    def test_local_search_consistent(self, each_backend):
        p = random_placement(10, 3, 30, 2)
        result = LocalSearchAdversary(restarts=1).attack(p, 3, 2)
        assert damage(p, result.nodes, 2) == result.damage

    def test_bnb_exact_per_backend(self, each_backend):
        p = random_placement(9, 3, 20, 3)
        expected = ExhaustiveAdversary().attack(p, 3, 2).damage
        result = BranchAndBoundAdversary().attack(p, 3, 2)
        assert result.exact
        assert result.damage == expected

    def test_forcing_does_not_leak(self):
        from repro.core.kernels import force_backend, make_kernel, resolve_backend

        p = random_placement(6, 2, 8, 4)
        with force_backend("python"):
            assert resolve_backend() == "python"
            assert make_kernel(p, 1).name == "python"
            with force_backend("bitset"):
                assert make_kernel(p, 1).name == "bitset"
            assert resolve_backend() == "python"
        # Outside the block the default selection is restored.
        assert make_kernel(p, 1).name == resolve_backend()


class TestLocalSearchDeterminism:
    def test_results_independent_of_call_order(self):
        p1 = random_placement(14, 3, 40, 11)
        p2 = random_placement(14, 3, 40, 12)
        # Fresh instance per attack vs one shared instance: identical, since
        # each attack() call reseeds its own generator.
        shared = LocalSearchAdversary(restarts=3)
        first = shared.attack(p1, 3, 2)
        second = shared.attack(p2, 3, 2)
        assert first == LocalSearchAdversary(restarts=3).attack(p1, 3, 2)
        assert second == LocalSearchAdversary(restarts=3).attack(p2, 3, 2)

    def test_seed_changes_restart_stream(self):
        p = random_placement(14, 3, 40, 13)
        a = LocalSearchAdversary(restarts=3, seed=1).attack(p, 3, 2)
        b = LocalSearchAdversary(restarts=3, seed=1).attack(p, 3, 2)
        assert a == b  # reproducible under an explicit seed

    def test_explicit_rng_still_honoured(self):
        p = random_placement(14, 3, 40, 14)
        a = LocalSearchAdversary(restarts=2, rng=random.Random(7)).attack(p, 3, 2)
        b = LocalSearchAdversary(restarts=2, rng=random.Random(7)).attack(p, 3, 2)
        assert a == b

    def test_warm_start_never_hurts(self):
        p = random_placement(14, 3, 40, 15)
        base = LocalSearchAdversary(restarts=0).attack(p, 4, 2)
        warmed = LocalSearchAdversary(restarts=0).attack(
            p, 4, 2, warm_start=base.nodes
        )
        assert warmed.damage >= base.damage

    def test_caller_rng_state_matches_the_serial_draw_loop(self):
        # Pre-drawing restart seeds must consume the caller-managed
        # generator exactly as the historical draw-inside-the-loop did:
        # one sample(range(n), k) per restart, nothing else. Pin both the
        # seed sequence and the post-attack generator state.
        p = random_placement(14, 3, 40, 16)
        rng = random.Random(99)
        LocalSearchAdversary(restarts=5, rng=rng).attack(p, 3, 2)
        reference = random.Random(99)
        expected_seeds = [
            reference.sample(range(p.n), 3) for _ in range(5)
        ]
        assert rng.getstate() == reference.getstate()
        # The drawn sequence is observable through the next draws: both
        # generators must continue identically.
        assert rng.random() == reference.random()
        # And the same seeds replayed explicitly reproduce the result.
        replay = random.Random(99)
        assert [
            replay.sample(range(p.n), 3) for _ in range(5)
        ] == expected_seeds

    def test_caller_rng_state_is_lane_count_invariant(self):
        # Chains consume no randomness, so the generator finishes in the
        # same state at any lane count.
        p = random_placement(14, 3, 40, 17)
        states, results = [], []
        for lanes in (1, 2, 4):
            rng = random.Random(41)
            results.append(
                LocalSearchAdversary(restarts=4, rng=rng, lanes=lanes).attack(
                    p, 3, 2
                )
            )
            states.append(rng.getstate())
        assert results[1] == results[0] and results[2] == results[0]
        assert states[1] == states[0] and states[2] == states[0]

    def test_shared_rng_attack_sequence_pinned(self):
        # Two successive attacks sharing one generator: the second sees
        # exactly the state the serial loop would have left behind.
        p1 = random_placement(14, 3, 40, 18)
        p2 = random_placement(14, 3, 40, 19)
        rng = random.Random(7)
        serial_first = LocalSearchAdversary(restarts=3, rng=rng, lanes=1)
        a1 = serial_first.attack(p1, 3, 2)
        a2 = serial_first.attack(p2, 3, 2)
        rng_lanes = random.Random(7)
        laned = LocalSearchAdversary(restarts=3, rng=rng_lanes, lanes=4)
        assert laned.attack(p1, 3, 2) == a1
        assert laned.attack(p2, 3, 2) == a2
        assert rng_lanes.getstate() == rng.getstate()


class TestEvaluationAccounting:
    """`evaluations` counts candidate damage evaluations, identically on
    every backend: greedy step i examines n - i candidates, a polish
    position n - (k - 1), and warm-start completion only the greedy steps
    that actually run after dropping duplicate/out-of-range seeds."""

    def test_greedy_charges_candidates_examined(self):
        p = random_placement(12, 3, 40, 0)
        result = GreedyAdversary().attack(p, 4, 2)
        assert result.evaluations == sum(12 - i for i in range(4))

    def test_polish_accounting_pinned(self):
        # Regression pin: greedy seed (42) plus two polish passes at
        # k * (n - k + 1) = 36 candidates each. Before the fix each
        # position was charged the full n regardless of the banned set.
        p = random_placement(12, 3, 40, 0)
        base = LocalSearchAdversary(restarts=0, seed=0).attack(p, 4, 2)
        assert base.evaluations == 114
        greedy = GreedyAdversary().attack(p, 4, 2)
        pass_cost = 4 * (12 - 3)
        assert (base.evaluations - greedy.evaluations) % pass_cost == 0

    def test_accounting_is_backend_independent(self, each_backend):
        p = random_placement(12, 3, 40, 0)
        result = LocalSearchAdversary(restarts=2, seed=0).attack(p, 4, 2)
        assert result.evaluations == 258

    def test_warm_start_duplicates_and_out_of_range(self):
        # Duplicates and out-of-range nodes are dropped before completion,
        # so the dirty warm start is *identical* to its cleaned form —
        # including evaluations (the old accounting charged
        # n * (k - len(set(warm_start))), which disagreed with the
        # filtered list whenever the seeds needed cleaning).
        p = random_placement(12, 3, 40, 0)
        clean = LocalSearchAdversary(restarts=0, seed=0).attack(
            p, 4, 2, warm_start=(0, 1)
        )
        dirty = LocalSearchAdversary(restarts=0, seed=0).attack(
            p, 4, 2, warm_start=(0, 0, 99, 1)
        )
        assert dirty == clean
        assert clean.evaluations == 205

    def test_warm_start_longer_than_k_truncated(self):
        p = random_placement(10, 3, 30, 1)
        full = LocalSearchAdversary(restarts=0, seed=0).attack(
            p, 2, 2, warm_start=(5, 3, 8, 1, 2)
        )
        truncated = LocalSearchAdversary(restarts=0, seed=0).attack(
            p, 2, 2, warm_start=(5, 3)
        )
        assert full == truncated


class TestResultsUnchangedVersusPR1:
    """best_attack results (nodes, damage, exact) for fixed seeds are
    bit-for-bit what PR 1's full-scan engines produced — the gain-table
    rewrite changed the cost of the search, never its trajectory. The
    literals below were captured by running PR 1's code."""

    PINNED = {
        ("random-20-3-120", 3, 2): ((3, 8, 19), 12),
        ("random-20-3-120", 5, 2): ((0, 1, 13, 16, 19), 26),
        ("random-20-3-120", 4, 3): ((0, 1, 2, 6), 4),
        ("random-31-3-600", 3, 2): ((7, 17, 21), 24),
        ("random-31-3-600", 5, 2): ((0, 2, 7, 17, 21), 59),
        ("random-31-3-600", 4, 3): ((10, 12, 15, 30), 5),
        ("simple-13-3-26", 3, 2): ((0, 1, 2), 3),
        ("simple-13-3-26", 5, 2): ((0, 1, 2, 3, 8), 10),
        ("simple-13-3-26", 4, 3): ((0, 1, 2, 6), 1),
    }

    @staticmethod
    def _placements():
        from repro.core.simple import SimpleStrategy

        return {
            "random-20-3-120": random_placement(20, 3, 120, 7),
            "random-31-3-600": random_placement(31, 3, 600, 42),
            "simple-13-3-26": SimpleStrategy(13, 3, 1).place(26),
        }

    def test_fast_effort_results_pinned(self, each_backend):
        placements = self._placements()
        for (label, k, s), (nodes, dmg) in self.PINNED.items():
            result = best_attack(placements[label], k, s, effort="fast")
            assert (tuple(result.nodes), result.damage) == (nodes, dmg), (
                each_backend, label, k, s, result,
            )

    def test_exact_effort_damage_unchanged(self, each_backend):
        # Tighter pruning (refined_bound) may change how much of the tree
        # branch-and-bound visits, but never the optimum it certifies.
        p = random_placement(10, 3, 30, 3)
        result = best_attack(p, 3, 2, effort="exact")
        assert result.exact
        assert result.damage == ExhaustiveAdversary().attack(p, 3, 2).damage


class TestBudgetDegradation:
    def test_budget_exhaustion_flags_inexact(self):
        p = random_placement(20, 3, 60, 4)
        result = BranchAndBoundAdversary(max_nodes=2).attack(p, 4, 2)
        assert not result.exact
        # Still a valid attack with consistent accounting.
        assert damage(p, result.nodes, 2) == result.damage


class TestBestAttack:
    def test_effort_fast(self):
        p = random_placement(15, 3, 30, 6)
        result = best_attack(p, 3, 2, effort="fast")
        assert isinstance(result, AttackResult)

    def test_effort_exact_small(self):
        p = random_placement(9, 3, 20, 7)
        result = best_attack(p, 3, 2, effort="exact")
        assert result.exact

    def test_effort_auto_picks_exact_on_small(self):
        p = random_placement(9, 3, 20, 8)
        result = best_attack(p, 2, 2, effort="auto")
        assert result.exact

    def test_unknown_effort_rejected(self):
        p = random_placement(9, 3, 20, 9)
        with pytest.raises(ValueError):
            best_attack(p, 2, 2, effort="extreme")

    def test_availability_helper(self):
        p = random_placement(9, 3, 20, 10)
        result = best_attack(p, 2, 2, effort="exact")
        assert result.availability(20) == 20 - result.damage
