"""Tests for Theorem 2 / Definition 6 / Lemma 4 analytics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rand_analysis import (
    alpha,
    failure_probability,
    lemma4_upper_bound,
    log_vulnerability,
    max_vulnerable_objects,
    pr_avail_fraction,
    pr_avail_rnd,
)
from repro.util.combinatorics import binom


class TestAlpha:
    def test_brute_force_small(self):
        # alpha counts r-subsets hitting a fixed k-set in >= s points.
        from itertools import combinations

        n, k, r, s = 8, 3, 3, 2
        fixed = set(range(k))
        expected = sum(
            1 for subset in combinations(range(n), r) if len(fixed & set(subset)) >= s
        )
        assert alpha(n, k, r, s) == expected

    @given(
        st.integers(5, 40),
        st.integers(1, 10),
        st.integers(1, 5),
        st.integers(1, 5),
    )
    def test_bounds_and_monotonicity(self, n, k, r, s):
        if not (s <= r <= n and k <= n):
            return
        value = alpha(n, k, r, s)
        assert 0 <= value <= binom(n, r)
        if s > 1:
            assert value <= alpha(n, k, r, s - 1)

    def test_s_one_complement_identity(self):
        # s=1: objects NOT failing avoid K entirely: alpha = C(n,r)-C(n-k,r).
        n, k, r = 20, 4, 3
        assert alpha(n, k, r, 1) == binom(n, r) - binom(n - k, r)

    def test_validation(self):
        with pytest.raises(ValueError):
            alpha(10, 3, 2, 3)
        with pytest.raises(ValueError):
            alpha(10, 11, 2, 1)


class TestVulnerability:
    def test_monotone_decreasing_in_f(self):
        values = [
            log_vulnerability(31, 3, 5, 3, 600, f) for f in range(0, 50, 5)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_f_zero_is_count_of_subsets(self):
        assert log_vulnerability(31, 3, 5, 3, 600, 0) == pytest.approx(
            math.log(binom(31, 3))
        )

    def test_max_vulnerable_is_threshold(self):
        n, k, r, s, b = 31, 3, 5, 3, 600
        f_star = max_vulnerable_objects(n, k, r, s, b)
        assert log_vulnerability(n, k, r, s, b, f_star) >= 0
        assert log_vulnerability(n, k, r, s, b, f_star + 1) < 0


class TestPrAvail:
    def test_complements_threshold(self):
        n, k, r, s, b = 71, 5, 5, 2, 2400
        assert pr_avail_rnd(n, k, r, s, b) == b - max_vulnerable_objects(
            n, k, r, s, b
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 8))
    def test_monotone_in_k(self, k):
        # More failures -> fewer objects probably available.
        n, r, s, b = 71, 5, 2, 1200
        if k >= s:
            assert pr_avail_rnd(n, k, r, s, b) >= pr_avail_rnd(n, k + 1, r, s, b)

    def test_monotone_in_s(self):
        # Harder-to-kill objects (bigger s) -> more availability.
        n, k, r, b = 71, 5, 5, 2400
        values = [pr_avail_rnd(n, k, r, s, b) for s in range(1, 6)]
        assert all(a <= b_ for a, b_ in zip(values, values[1:]))

    def test_fig8_shape_anchor(self):
        # s = 1 decays far faster than s = r = 5 (paper's Fig 8 takeaway).
        frac_s1 = pr_avail_fraction(71, 5, 5, 1, 38400)
        frac_s5 = pr_avail_fraction(71, 5, 5, 5, 38400)
        assert frac_s5 > 0.999
        assert frac_s1 < 0.75

    def test_b_validated(self):
        with pytest.raises(ValueError):
            pr_avail_rnd(31, 3, 5, 3, 0)


class TestLemma4:
    def test_formula(self):
        n, k, r, b = 71, 5, 3, 38400
        load = math.floor(r * b / n)
        expected = b * (1 - 1 / b) ** (k * load)
        assert lemma4_upper_bound(n, k, r, b) == pytest.approx(expected, rel=1e-9)

    def test_requires_k_below_half(self):
        with pytest.raises(ValueError):
            lemma4_upper_bound(10, 5, 3, 100)

    def test_bounds_pr_avail_loosely(self):
        # Lemma 4 is an upper bound on prAvail for s = 1.
        n, k, r, b = 71, 5, 3, 2400
        assert pr_avail_rnd(n, k, r, 1, b) <= lemma4_upper_bound(n, k, r, b) + 1

    def test_decay_in_k(self):
        values = [lemma4_upper_bound(71, k, 3, 38400) for k in range(1, 10)]
        assert all(a > b_ for a, b_ in zip(values, values[1:]))
