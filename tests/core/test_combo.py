"""Tests for the Combo strategy and the Sec. III-B1 dynamic program."""

import itertools

import pytest

from repro.core.bounds import lb_avail_combo
from repro.core.combo import ComboStrategy
from repro.core.subsystems import select_combo_subsystems
from repro.designs.blocks import BlockDesign
from repro.designs.catalog import Existence
from repro.util.combinatorics import binom, ceil_div


class TestPlanBasics:
    def test_counts_sum_to_b(self):
        strategy = ComboStrategy(71, 5, 3, tier=Existence.KNOWN)
        for b in (600, 1200, 4800):
            for k in (3, 5, 7):
                plan = strategy.plan(b, k)
                assert sum(plan.counts) == b
                assert len(plan.lambdas) == 3

    def test_capacity_constraint_eqn3(self):
        strategy = ComboStrategy(71, 5, 3, tier=Existence.KNOWN)
        plan = strategy.plan(9600, 5)
        total_capacity = 0
        for x, lam in enumerate(plan.lambdas):
            sub = strategy.subsystems[x]
            if lam and sub:
                total_capacity += sub.capacity(lam)
        assert total_capacity >= 9600

    def test_lower_bound_nonnegative(self):
        strategy = ComboStrategy(31, 5, 3, tier=Existence.KNOWN)
        for b in (600, 4800, 38400):
            assert strategy.plan(b, 6).lower_bound >= 0

    def test_validation(self):
        strategy = ComboStrategy(71, 3, 2)
        with pytest.raises(ValueError):
            strategy.plan(0, 3)
        with pytest.raises(ValueError):
            strategy.plan(100, 1)  # k < s
        with pytest.raises(ValueError):
            ComboStrategy(71, 3, 4)  # s > r
        with pytest.raises(ValueError):
            ComboStrategy(71, 3, 2, subsystems=())

    def test_lower_bound_at_other_k(self):
        strategy = ComboStrategy(71, 5, 3, tier=Existence.KNOWN)
        plan = strategy.plan(1200, 6)
        assert plan.lower_bound_at(6) <= plan.lower_bound
        assert plan.lower_bound_at(4) >= plan.lower_bound_at(8)


class TestDPOptimality:
    """The DP must match brute-force enumeration of lambda assignments."""

    def brute_force(self, strategy, b, k):
        """Maximize Lemma-3 over all capacity-feasible per-stratum splits."""
        s = strategy.s
        units = [sub.unit_capacity if sub else 0 for sub in strategy.subsystems]
        mus = [sub.mu if sub else 0 for sub in strategy.subsystems]
        best = None
        ranges = []
        for x in range(s):
            if units[x] == 0:
                ranges.append([0])
            else:
                ranges.append(range(ceil_div(b, units[x]) + 1))
        for choice in itertools.product(*ranges):
            placed = sum(d * units[x] for x, d in enumerate(choice))
            if placed < b:
                continue
            # Objects actually placed per stratum, filled greedily top-down
            # exactly as the DP's traceback does.
            remaining = b
            value = 0
            for x in range(s - 1, -1, -1):
                d = choice[x]
                if d == 0:
                    continue
                here = min(remaining, d * units[x])
                loss = (d * mus[x] * binom(k, x + 1)) // binom(s, x + 1)
                value += here - loss
                remaining -= d * units[x]
                if remaining <= 0:
                    remaining = 0
            if best is None or value > best:
                best = value
        return best

    @pytest.mark.parametrize("n,r,s", [(13, 3, 2), (16, 4, 3), (13, 3, 3)])
    def test_matches_brute_force_small(self, n, r, s):
        strategy = ComboStrategy(n, r, s, tier=Existence.CONSTRUCTIBLE)
        for b in (10, 30, 80):
            for k in range(s, min(6, n - 1)):
                plan = strategy.plan(b, k)
                brute = self.brute_force(strategy, b, k)
                assert plan.lower_bound >= brute - 1e-9, (b, k)
                # DP respects Eqn 6's clamp; brute force here mirrors it, so
                # they should agree exactly when every stratum is available.
                assert plan.lower_bound >= max(0, brute), (b, k)

    def test_beats_or_matches_single_stratum(self):
        # Combo must never be worse than the best pure Simple choice
        # evaluated by the same lower-bound machinery.
        strategy = ComboStrategy(31, 3, 3, tier=Existence.KNOWN)
        b = 4800
        for k in (3, 4, 5, 6):
            plan = strategy.plan(b, k)
            for x in (1, 2):
                sub = strategy.subsystems[x]
                lam = sub.minimal_lambda(b)
                lambdas = [0, 0, 0]
                lambdas[x] = lam
                pure = lb_avail_combo(b, k, 3, lambdas)
                assert plan.lower_bound >= pure


class TestPaperAnchors:
    def test_fig10a_combo_beats_both_at_crossover(self):
        # Paper Sec. IV-C: at n = 31, b = 4800, k in {5, 6} the Combo bound
        # exceeds both pure Simple(1, .) and Simple(2, .) bounds because it
        # mixes Simple(2, 1) with Simple(1, 2).
        strategy = ComboStrategy(31, 3, 3, tier=Existence.KNOWN)
        for k in (5, 6):
            plan = strategy.plan(4800, k)
            subs = strategy.subsystems
            pure1 = lb_avail_combo(4800, k, 3, (0, subs[1].minimal_lambda(4800), 0))
            pure2 = lb_avail_combo(4800, k, 3, (0, 0, subs[2].minimal_lambda(4800)))
            assert plan.lower_bound > max(pure1, pure2)
            assert plan.lambdas[1] > 0 and plan.lambdas[2] > 0  # a true mix

    def test_sensitivity_is_mild(self):
        # Fig. 3's claim: configuring for k = 6 but suffering k' in 4..8
        # keeps the bound within a few percent of the k'-tuned bound.
        strategy = ComboStrategy(71, 5, 3, tier=Existence.KNOWN)
        plan6 = strategy.plan(1200, 6)
        for k_prime in range(4, 9):
            tuned = strategy.plan(1200, k_prime)
            ratio = plan6.lower_bound_at(k_prime) / max(
                1, tuned.lower_bound_at(k_prime)
            )
            assert ratio > 0.95


class TestPlacementRealization:
    def test_place_matches_plan_counts(self):
        strategy = ComboStrategy(31, 3, 2, tier=Existence.CONSTRUCTIBLE)
        plan = strategy.plan(200, 3)
        placement = strategy.place(200, 3, plan=plan)
        assert placement.b == 200
        assert placement.r == 3

    def test_placement_respects_stratum_packings(self):
        strategy = ComboStrategy(31, 3, 3, tier=Existence.CONSTRUCTIBLE)
        b, k = 500, 4
        plan = strategy.plan(b, k)
        placement = strategy.place(b, k, plan=plan)
        # The combined placement kills at most the Lemma-3 loss under any
        # exact attack on a small instance -- cross-check on sub-blocks:
        design = BlockDesign.from_blocks(
            31, [tuple(sorted(ns)) for ns in placement.replica_sets]
        )
        # Stratum multiplicities cannot exceed the planned lambdas overall:
        # any pair is shared by at most lambda_1 + (pairs inside x=2 blocks).
        assert design.max_coverage(3) <= max(1, plan.lambdas[2] + plan.lambdas[1])

    def test_soundness_small_exact(self):
        from repro.core.adversary import ExhaustiveAdversary

        strategy = ComboStrategy(13, 3, 2, tier=Existence.CONSTRUCTIBLE)
        b, k, s = 60, 3, 2
        plan = strategy.plan(b, k)
        placement = strategy.place(b, k, plan=plan)
        attack = ExhaustiveAdversary().attack(placement, k, s)
        assert b - attack.damage >= plan.lower_bound
