"""Bit-identity tests for replicated gain-state polish lanes.

The lane contract: ``polish_chains`` runs each chain on a private clone
of the bound kernel's packed state, so the full local-search certificate
— ``AttackResult`` equality including evaluation counts — is identical
at every lane count, on every gain backing, at every native thread
count, and the parent engine's own packed state is never touched. Lanes
are a pure scheduling knob; these tests pin that down:

* the {lanes} x {backing} x {threads} matrix against a serial baseline,
  including ``warm_start`` and the ``restarts=0`` edge case;
* a packed-state byte comparison (the PR 9 wire format) proving lanes
  never mutate the parent kernel or its live hits objects;
* the lane-budget knobs themselves (``REPRO_ATTACK_LANES`` parsing,
  configure/restore, argument > pin > env precedence).
"""

import random
from contextlib import contextmanager

import pytest

from repro.core import native
from repro.core.adversary import (
    LocalSearchAdversary,
    attack_lanes,
    configure_lanes,
    configured_lanes,
)
from repro.core.batch import AttackCell, AttackEngine
from repro.core.kernels import GAIN_BACKINGS, make_kernel, numpy_available
from repro.core.random_placement import RandomStrategy

LANE_COUNTS = (1, 2, 4)
THREAD_COUNTS = (1, 2)


def available_gain_backings():
    return [
        backing
        for backing in GAIN_BACKINGS
        if (backing != "numpy" or numpy_available())
        and (backing != "native" or native.available())
    ]


def random_placement(n, r, b, seed):
    return RandomStrategy(n, r).place(b, random.Random(seed))


@contextmanager
def kernel_threads(count):
    previous = native.configured_threads()
    native.configure_threads(count)
    try:
        yield
    finally:
        native.configure_threads(previous)


@contextmanager
def pinned_lanes(count):
    previous = configured_lanes()
    configure_lanes(count)
    try:
        yield
    finally:
        configure_lanes(previous)


class TestLaneBitIdentity:
    """Certificates pinned byte-for-byte against the serial path."""

    @pytest.mark.parametrize("backing", available_gain_backings())
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_matrix_matches_serial(self, backing, threads):
        placement = random_placement(14, 3, 42, 7)
        kernel = make_kernel(
            placement, 2, backend="gain", gain_backing=backing
        )
        with kernel_threads(threads):
            baseline = LocalSearchAdversary(restarts=6, lanes=1).attack(
                placement, 3, 2, kernel=kernel
            )
            for lanes in LANE_COUNTS[1:]:
                result = LocalSearchAdversary(restarts=6, lanes=lanes).attack(
                    placement, 3, 2, kernel=kernel
                )
                assert result == baseline

    @pytest.mark.parametrize("backing", available_gain_backings())
    def test_warm_start_matches_serial(self, backing):
        placement = random_placement(12, 3, 36, 3)
        kernel = make_kernel(
            placement, 2, backend="gain", gain_backing=backing
        )
        warm = (0, 5)
        baseline = LocalSearchAdversary(restarts=4, lanes=1).attack(
            placement, 3, 2, kernel=kernel, warm_start=warm
        )
        for lanes in LANE_COUNTS[1:]:
            result = LocalSearchAdversary(restarts=4, lanes=lanes).attack(
                placement, 3, 2, kernel=kernel, warm_start=warm
            )
            assert result == baseline

    @pytest.mark.parametrize("backing", available_gain_backings())
    def test_restarts_zero_edge_case(self, backing):
        # One chain (the greedy polish) cannot fill two lanes; width must
        # clamp without changing the certificate.
        placement = random_placement(11, 3, 30, 9)
        kernel = make_kernel(
            placement, 2, backend="gain", gain_backing=backing
        )
        baseline = LocalSearchAdversary(restarts=0, lanes=1).attack(
            placement, 3, 2, kernel=kernel
        )
        for lanes in LANE_COUNTS[1:]:
            result = LocalSearchAdversary(restarts=0, lanes=lanes).attack(
                placement, 3, 2, kernel=kernel
            )
            assert result == baseline

    def test_engine_attack_lane_argument(self):
        placement = random_placement(13, 3, 40, 5)
        cell = AttackCell(3, 2, "fast")
        engines = {
            lanes: AttackEngine(placement) for lanes in LANE_COUNTS
        }
        results = {
            lanes: engine.attack(cell, seed=2, cache=False, lanes=lanes)
            for lanes, engine in engines.items()
        }
        assert results[2] == results[1]
        assert results[4] == results[1]


class TestLanesNeverMutateParent:
    """Chains run on clones: the parent's packed state is untouched."""

    @pytest.mark.parametrize("backing", available_gain_backings())
    def test_packed_state_bytes_unchanged(self, backing):
        placement = random_placement(12, 3, 36, 4)
        kernel = make_kernel(
            placement, 2, backend="gain", gain_backing=backing
        )
        live = kernel.hits_for([1, 4])
        empty_before = kernel.export_state(kernel.empty_hits())
        live_before = kernel.export_state(live)
        rng = random.Random(17)
        seeds = [rng.sample(range(placement.n), 3) for _ in range(5)]
        kernel.polish_chains(seeds, lanes=4)
        assert kernel.export_state(kernel.empty_hits()) == empty_before
        assert kernel.export_state(live) == live_before

    def test_engine_state_survives_lane_attack(self):
        placement = random_placement(12, 3, 36, 6)
        engine = AttackEngine(placement)
        kernel = engine.kernel(2)
        before = kernel.export_state(kernel.empty_hits())
        engine.attack(AttackCell(3, 2, "fast"), seed=1, lanes=4, cache=False)
        assert kernel.export_state(kernel.empty_hits()) == before


class TestLaneChainAccounting:
    """polish_chains reports (nodes, damage, passes, swaps) identically."""

    @pytest.mark.parametrize("backing", available_gain_backings())
    def test_chain_tuples_match_across_lane_counts(self, backing):
        placement = random_placement(13, 3, 40, 8)
        kernel = make_kernel(
            placement, 2, backend="gain", gain_backing=backing
        )
        rng = random.Random(23)
        seeds = [rng.sample(range(placement.n), 4) for _ in range(6)]
        serial = kernel.polish_chains(seeds, lanes=1)
        for lanes in LANE_COUNTS[1:]:
            assert kernel.polish_chains(seeds, lanes=lanes) == serial

    @pytest.mark.parametrize("backing", available_gain_backings())
    def test_backings_agree_on_chain_tuples(self, backing):
        placement = random_placement(11, 3, 30, 2)
        reference = make_kernel(
            placement, 2, backend="gain", gain_backing="python"
        )
        kernel = make_kernel(
            placement, 2, backend="gain", gain_backing=backing
        )
        rng = random.Random(5)
        seeds = [rng.sample(range(placement.n), 3) for _ in range(4)]
        assert kernel.polish_chains(seeds, lanes=2) == reference.polish_chains(
            seeds, lanes=1
        )

    def test_mixed_seed_sizes_rejected_by_native(self):
        if not native.available():
            pytest.skip("native kernel unavailable")
        placement = random_placement(10, 3, 24, 1)
        kernel = make_kernel(
            placement, 2, backend="gain", gain_backing="native"
        )
        with pytest.raises(ValueError):
            kernel.polish_chains([[0, 1], [2, 3, 4]], lanes=2)


class TestLaneBudgetKnobs:
    def test_argument_beats_pin_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ATTACK_LANES", "3")
        assert attack_lanes() == 3
        with pinned_lanes(2):
            assert attack_lanes() == 2
            assert attack_lanes(5) == 5
        assert attack_lanes() == 3

    def test_auto_follows_thread_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_ATTACK_LANES", "auto")
        with kernel_threads(2):
            assert attack_lanes() == native.thread_count()

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ATTACK_LANES", "warp")
        with pytest.raises(ValueError):
            attack_lanes()

    def test_validation(self):
        with pytest.raises(ValueError):
            configure_lanes(0)
        with pytest.raises(ValueError):
            attack_lanes(0)
        with pytest.raises(ValueError):
            LocalSearchAdversary(lanes=0)

    def test_configure_restores_with_none(self):
        configure_lanes(2)
        assert configured_lanes() == 2
        configure_lanes(None)
        assert configured_lanes() is None
