"""Tests for placement inspection and certified availability."""

import random

import pytest

from repro.core.adversary import ExhaustiveAdversary
from repro.core.inspect import (
    audit_placement,
    certified_availability,
    expected_random_multiplicity,
    packing_profile,
)
from repro.core.placement import Placement
from repro.core.random_placement import RandomStrategy
from repro.core.simple import SimpleStrategy


class TestProfile:
    def test_simple_placement_profile_matches_lambda(self):
        strategy = SimpleStrategy(13, 3, 1)
        placement = strategy.place(30)
        profile = packing_profile(placement)
        assert profile.lam(1) == strategy.minimal_lambda(30)
        # x = 2 (whole blocks): distinct blocks except across copies.
        assert profile.lam(2) >= 1

    def test_known_profile_by_hand(self):
        placement = Placement.from_replica_sets(
            5, [(0, 1, 2), (0, 1, 3), (2, 3, 4)]
        )
        profile = packing_profile(placement)
        assert profile.lam(0) == 2  # nodes 0..3 host two objects each
        assert profile.lam(1) == 2  # pair (0,1) shared by two objects
        assert profile.lam(2) == 1

    def test_max_x_truncation(self):
        placement = Placement.from_replica_sets(5, [(0, 1, 2), (2, 3, 4)])
        profile = packing_profile(placement, max_x=0)
        assert profile.lam(0) == 2
        assert profile.multiplicities[1] == 0  # not measured

    def test_lam_range_validated(self):
        placement = Placement.from_replica_sets(5, [(0, 1, 2)])
        profile = packing_profile(placement)
        with pytest.raises(ValueError):
            profile.lam(3)


class TestCertificates:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_certificate_sound_vs_exact_adversary(self, seed):
        placement = RandomStrategy(12, 3).place(40, random.Random(seed))
        for s in (1, 2, 3):
            for k in (s, s + 1):
                floor = certified_availability(placement, k, s)
                exact = ExhaustiveAdversary().attack(placement, k, s)
                assert placement.b - exact.damage >= floor, (seed, k, s)

    def test_certificate_nonnegative(self):
        placement = RandomStrategy(8, 2).place(100, random.Random(3))
        assert certified_availability(placement, 3, 1) >= 0

    def test_structured_beats_random_certificate(self):
        # A Simple placement certifies more availability than a typical
        # Random placement of the same shape.
        simple = SimpleStrategy(13, 3, 1).place(26)
        rnd = RandomStrategy(13, 3).place(26, random.Random(4))
        assert certified_availability(simple, 3, 2) >= certified_availability(
            rnd, 3, 2
        )

    def test_validation(self):
        placement = RandomStrategy(10, 3).place(20, random.Random(0))
        with pytest.raises(ValueError):
            certified_availability(placement, 2, 4)
        with pytest.raises(ValueError):
            certified_availability(placement, 1, 2)


class TestAudit:
    def test_audit_grid(self):
        placement = SimpleStrategy(13, 3, 1).place(26)
        audit = audit_placement(placement, k_values=(2, 3), s_values=(2, 3))
        assert (2, 2) in audit.certificates
        assert (3, 3) in audit.certificates
        assert (2, 3) not in audit.certificates  # k < s filtered out
        text = audit.render()
        assert "placement audit" in text
        assert "lambda" in text

    def test_audit_requires_grid(self):
        placement = SimpleStrategy(13, 3, 1).place(26)
        with pytest.raises(ValueError):
            audit_placement(placement, k_values=(), s_values=(2,))


class TestExpectedMultiplicity:
    def test_formula(self):
        assert expected_random_multiplicity(10, 100, 3, 0) == pytest.approx(
            100 * 3 / 10
        )
        assert expected_random_multiplicity(10, 100, 3, 1) == pytest.approx(
            100 * 3 / 45
        )

    def test_measured_random_profile_near_expectation(self):
        placement = RandomStrategy(20, 3).place(400, random.Random(5))
        profile = packing_profile(placement, max_x=0)
        expected = expected_random_multiplicity(20, 400, 3, 0)
        # Max load is above the mean but within a small factor under quota.
        assert expected <= profile.lam(0) <= 1.2 * expected

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_random_multiplicity(10, 100, 3, 3)
