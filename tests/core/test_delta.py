"""Tests for the delta-aware attack engine and mutable incidence.

The contract under test: an engine that absorbed any interleaved sequence
of object arrivals/departures via ``apply_delta`` is indistinguishable —
bit-for-bit, ``AttackResult`` equality including evaluation counts — from
an engine built cold from the resulting placement, across every kernel
backend and every gain backing available in this environment.
"""

import random

import pytest

from repro.core.batch import (
    AttackCell,
    AttackEngine,
    clear_attack_caches,
    engine_for,
)
from repro.core.kernels import (
    DeltaIncidence,
    GAIN_BACKINGS,
    Incidence,
    numpy_available,
    resolve_gain_backing,
)
from repro.core.placement import Placement
from repro.core.random_placement import RandomStrategy


def random_placement(n, r, b, seed):
    return RandomStrategy(n, r).place(b, random.Random(seed))


def available_gain_backings():
    available = []
    for backing in GAIN_BACKINGS:
        try:
            resolve_gain_backing(backing)
        except ValueError:
            continue
        available.append(backing)
    return available


def engine_variants():
    """Every (backend, gain_backing) pair runnable here."""
    variants = [("gain", backing) for backing in available_gain_backings()]
    variants += [("bitset", None), ("python", None)]
    if numpy_available():
        variants.append(("numpy", None))
    return variants


def random_delta(rng, engine_b, n, r):
    """One random churn batch: (added replica sets, removed ids)."""
    added = [
        sorted(rng.sample(range(n), r)) for _ in range(rng.randrange(0, 3))
    ]
    removable = max(0, engine_b - 4)
    removed = (
        rng.sample(range(engine_b), min(removable, rng.randrange(0, 3)))
        if removable else []
    )
    return added, removed


class TestDeltaIncidence:
    def test_matches_cold_incidence_after_interleaved_deltas(self):
        rng = random.Random(11)
        placement = random_placement(12, 3, 30, 0)
        delta = DeltaIncidence(placement)
        for _ in range(40):
            added, removed = random_delta(rng, delta.b, 12, 3)
            if not added and not removed:
                continue
            current = delta.apply_delta(added, removed)
            cold = Incidence(current)
            assert delta.node_masks() == cold.node_masks()
            assert [sorted(row) for row in delta.node_objects()] == [
                sorted(row) for row in cold.node_objects()
            ]
            assert list(delta.object_nodes()) == list(cold.object_nodes())
            assert delta.suffix_counts() == cold.suffix_counts()
            assert delta.suffix_masks() == cold.suffix_masks()
            assert current.load_profile() == tuple(
                Placement.from_replica_sets(
                    current.n, current.replica_sets
                ).load_profile()
            )

    def _assert_csr_equivalent(self, delta, cold):
        """Padded delta export == tight cold export on the live region."""
        b, r, n = delta.b, delta.r, delta.n
        d_off, d_end, d_store, d_oo, d_on = delta.csr()
        c_off, c_end, c_store, c_oo, c_on = cold.csr()
        assert list(d_oo[:b + 1]) == list(c_oo[:b + 1])
        assert list(d_on[:b * r]) == list(c_on[:b * r])
        # Node-major object order may differ after swaps; contents may not.
        for node in range(n):
            assert sorted(d_store[d_off[node]:d_end[node]]) == sorted(
                c_store[c_off[node]:c_end[node]]
            )

    def test_csr_matches_cold_export(self):
        placement = random_placement(9, 3, 20, 1)
        delta = DeltaIncidence(placement)
        delta.apply_delta(added=[[0, 1, 2]], removed=[3, 15])
        self._assert_csr_equivalent(delta, Incidence(delta.placement))

    def test_csr_is_maintained_in_place_until_overflow(self):
        rng = random.Random(31)
        placement = random_placement(9, 3, 12, 4)
        delta = DeltaIncidence(placement)
        exported = delta.csr()
        grew = False
        for _ in range(60):
            added, removed = random_delta(rng, delta.b, 9, 3)
            if not added and not removed:
                continue
            delta.apply_delta(added, removed)
            self._assert_csr_equivalent(delta, Incidence(delta.placement))
            grew = grew or delta.csr() is not exported
        # Sustained growth must eventually overflow the slack and force a
        # (correct) re-export with fresh capacity.
        assert grew

    def test_swap_with_last_semantics(self):
        placement = Placement.from_replica_sets(
            6, [[0, 1], [1, 2], [2, 3], [3, 4]]
        )
        delta = DeltaIncidence(placement)
        current = delta.apply_delta(removed=[1])
        # Object 3 (the last) moved into slot 1.
        assert current.replica_sets == (
            frozenset({0, 1}), frozenset({3, 4}), frozenset({2, 3})
        )

    def test_removing_the_last_object_pops(self):
        placement = Placement.from_replica_sets(6, [[0, 1], [1, 2], [2, 3]])
        delta = DeltaIncidence(placement)
        current = delta.apply_delta(removed=[2])
        assert current.replica_sets == (frozenset({0, 1}), frozenset({1, 2}))

    def test_validation(self):
        placement = Placement.from_replica_sets(6, [[0, 1], [1, 2]])
        delta = DeltaIncidence(placement)
        with pytest.raises(ValueError):
            delta.apply_delta(added=[[0]])  # wrong r
        with pytest.raises(ValueError):
            delta.apply_delta(added=[[0, 0]])  # duplicate node
        with pytest.raises(ValueError):
            delta.apply_delta(added=[[0, 9]])  # out of range
        with pytest.raises(ValueError):
            delta.apply_delta(removed=[5])  # unknown id
        with pytest.raises(ValueError):
            delta.apply_delta(removed=[0, 0])  # duplicate removal
        with pytest.raises(ValueError):
            delta.apply_delta(removed=[0, 1])  # would empty the placement


@pytest.mark.parametrize("backend,backing", engine_variants())
class TestDeltaEngineBitForBit:
    """Delta-updated engines pinned against cold-built ones."""

    def test_interleaved_churn_and_attacks(self, backend, backing):
        rng = random.Random(202)
        placement = random_placement(13, 3, 36, 2)
        engine = AttackEngine(placement, backend=backend, gain_backing=backing)
        attacks = 0
        for step in range(36):
            added, removed = random_delta(rng, engine.placement.b, 13, 3)
            if added or removed:
                engine.apply_delta(
                    added_objects=added, removed_objects=removed
                )
            if step % 3 == 2:
                k = rng.choice((2, 3))
                s = rng.choice((1, 2))
                effort = "exact" if step % 6 == 5 else "fast"
                cell = AttackCell(k, s, effort)
                cold = AttackEngine(
                    engine.placement, backend=backend, gain_backing=backing
                )
                assert engine.attack(cell, seed=9) == cold.attack(cell, seed=9)
                attacks += 1
        assert attacks >= 10

    def test_interleaved_churn_and_lane_attacks(self, backend, backing):
        # Lane clones must snapshot the *current* (delta-rebound) packed
        # state, not the cold build — churn that changes b resizes the
        # state block, so a stale lane replica would read garbage. Every
        # lane-parallel attack after churn must match a cold engine
        # attacked serially.
        rng = random.Random(404)
        placement = random_placement(13, 3, 32, 9)
        engine = AttackEngine(placement, backend=backend, gain_backing=backing)
        attacks = 0
        for step in range(24):
            added, removed = random_delta(rng, engine.placement.b, 13, 3)
            if added or removed:
                engine.apply_delta(
                    added_objects=added, removed_objects=removed
                )
            if step % 3 == 2:
                cell = AttackCell(rng.choice((2, 3)), rng.choice((1, 2)), "fast")
                cold = AttackEngine(
                    engine.placement, backend=backend, gain_backing=backing
                )
                assert engine.attack(
                    cell, seed=9, cache=False, lanes=2
                ) == cold.attack(cell, seed=9, cache=False, lanes=1)
                attacks += 1
        assert attacks >= 6

    def test_warm_chain_matches_cold(self, backend, backing):
        placement = random_placement(12, 3, 30, 3)
        engine = AttackEngine(placement, backend=backend, gain_backing=backing)
        engine.apply_delta(added_objects=[[0, 1, 2], [4, 5, 6]],
                           removed_objects=[1, 8])
        cold = AttackEngine(
            engine.placement, backend=backend, gain_backing=backing
        )
        warm = None
        for k in (2, 3, 4):
            cell = AttackCell(k, 2, "fast")
            mine = engine.attack(cell, seed=4, warm_start=warm)
            assert mine == cold.attack(cell, seed=4, warm_start=warm)
            warm = mine.nodes


class TestDeltaEngineLifecycle:
    def setup_method(self):
        clear_attack_caches()

    def test_memo_cleared_on_delta(self):
        placement = random_placement(12, 3, 30, 5)
        engine = AttackEngine(placement)
        cell = AttackCell(3, 2, "fast")
        before = engine.attack(cell, seed=1)
        engine.apply_delta(added_objects=[[0, 1, 2]] * 4)
        after = engine.attack(cell, seed=1)
        # Same key, different structure: the memo cannot serve stale data.
        assert after.damage >= before.damage
        assert engine.placement.b == placement.b + 4
        cold = AttackEngine(engine.placement)
        assert after == cold.attack(cell, seed=1)

    def test_mutated_engine_detaches_from_process_cache(self):
        placement = random_placement(12, 3, 30, 6)
        warm = engine_for(placement)
        warm.apply_delta(added_objects=[[1, 2, 3]])
        fresh = engine_for(placement)
        assert fresh is not warm
        assert fresh.placement.b == placement.b

    def test_kernels_survive_deltas_when_rebindable(self):
        placement = random_placement(12, 3, 30, 7)
        engine = AttackEngine(placement, backend="gain", gain_backing="python")
        engine.apply_delta(added_objects=[[2, 3, 4]])  # upgrade drops kernels
        kernel = engine.kernel(2)
        engine.apply_delta(added_objects=[[5, 6, 7]], removed_objects=[0])
        assert engine.kernel(2) is kernel  # absorbed in place
        assert kernel.b == engine.placement.b

    def test_delta_engine_attack_grid_spans_thresholds(self):
        placement = random_placement(11, 3, 28, 8)
        engine = AttackEngine(placement)
        engine.apply_delta(added_objects=[[0, 1, 2]], removed_objects=[2])
        for s in (1, 2, 3):
            cold = AttackEngine(engine.placement)
            cell = AttackCell(2, s, "exact")
            assert engine.attack(cell, seed=0) == cold.attack(cell, seed=0)
