"""Tests for the Simple(x, lambda) strategy: Definition 2 compliance."""

import pytest

from repro.core.simple import SimpleStrategy
from repro.core.subsystems import Chunk, Subsystem
from repro.designs.blocks import BlockDesign, DesignError
from repro.designs.catalog import Existence


def packing_multiplicity(placement, t):
    design = BlockDesign.from_blocks(
        placement.n, [tuple(sorted(nodes)) for nodes in placement.replica_sets]
    )
    return design.max_coverage(t)


class TestConstruction:
    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            SimpleStrategy(10, 3, 3)  # x >= r
        with pytest.raises(ValueError):
            SimpleStrategy(2, 3, 1)  # r > n

    def test_rejects_oversized_subsystem(self):
        sub = Subsystem(r=3, x=1, chunks=(Chunk(9, 1),), tier=Existence.KNOWN)
        with pytest.raises(ValueError):
            SimpleStrategy(7, 3, 1, subsystem=sub)

    def test_rejects_mismatched_subsystem(self):
        sub = Subsystem(r=3, x=1, chunks=(Chunk(9, 1),), tier=Existence.KNOWN)
        with pytest.raises(ValueError):
            SimpleStrategy(9, 3, 0, subsystem=sub)

    def test_raises_when_no_subsystem(self):
        with pytest.raises(DesignError):
            SimpleStrategy(10, 5, 3)  # no S(4,5,v) with v <= 10 constructible


class TestDefinition2:
    """The packing property: no (x+1)-subset shared by > lambda objects."""

    @pytest.mark.parametrize("b", [50, 782, 783, 1200])
    def test_sts69_placements(self, b):
        strategy = SimpleStrategy(71, 3, 1)
        placement = strategy.place(b)
        lam = strategy.minimal_lambda(b)
        assert packing_multiplicity(placement, 2) <= lam
        # Minimality: the placement actually uses multiplicity lam when a
        # whole extra copy has started.
        if b > 782:
            assert packing_multiplicity(placement, 2) == lam

    def test_trivial_stratum_distinct_subsets(self):
        strategy = SimpleStrategy(10, 3, 2)
        placement = strategy.place(40)
        assert packing_multiplicity(placement, 3) == 1

    def test_partition_stratum(self):
        strategy = SimpleStrategy(10, 3, 0)
        placement = strategy.place(7)
        # 1-packing with lambda = ceil(7/3) = 3: no node in > 3 objects.
        assert max(placement.loads()) <= 3

    def test_multi_chunk_packing(self):
        sub = Subsystem(
            r=3, x=1, chunks=(Chunk(9, 1), Chunk(7, 1)), tier=Existence.KNOWN
        )
        strategy = SimpleStrategy(16, 3, 1, subsystem=sub)
        placement = strategy.place(19)
        assert packing_multiplicity(placement, 2) <= strategy.minimal_lambda(19)


class TestBounds:
    def test_lower_bound_uses_minimal_lambda(self):
        strategy = SimpleStrategy(71, 3, 1)
        assert strategy.lower_bound(1200, 3, 2) == 1200 - (2 * 3) // 1

    def test_lower_bound_requires_x_below_s(self):
        strategy = SimpleStrategy(71, 3, 2)
        with pytest.raises(ValueError):
            strategy.lower_bound(100, 3, 2)

    def test_capacity_delegates(self):
        strategy = SimpleStrategy(71, 3, 1)
        assert strategy.capacity(2) == 1564

    def test_place_validates_b(self):
        strategy = SimpleStrategy(71, 3, 1)
        with pytest.raises(ValueError):
            strategy.place(0)


class TestSoundness:
    """Lemma 2 soundness: actual worst-case availability >= lower bound."""

    @pytest.mark.parametrize("s,k", [(2, 2), (2, 3), (3, 3)])
    def test_exact_adversary_never_beats_bound(self, s, k):
        from repro.core.adversary import ExhaustiveAdversary

        strategy = SimpleStrategy(13, 3, 1)
        b = 30
        placement = strategy.place(b)
        attack = ExhaustiveAdversary().attack(placement, k, s)
        avail = b - attack.damage
        assert avail >= strategy.lower_bound(b, k, s)
