"""Tests for subsystem selection and capacity-gap computation."""

import pytest

from repro.core.subsystems import (
    Chunk,
    Subsystem,
    best_chunk_decomposition,
    capacity_gap,
    select_combo_subsystems,
    select_subsystem,
)
from repro.designs.catalog import Existence
from repro.util.combinatorics import binom


class TestSubsystem:
    def test_unit_capacity_single_chunk(self):
        sub = Subsystem(r=3, x=1, chunks=(Chunk(69, 1),), tier=Existence.KNOWN)
        assert sub.unit_capacity == 782
        assert sub.mu == 1
        assert sub.capacity(2) == 1564
        assert sub.minimal_lambda(783) == 2

    def test_unit_capacity_multi_chunk(self):
        sub = Subsystem(
            r=3, x=1, chunks=(Chunk(9, 1), Chunk(7, 1)), tier=Existence.KNOWN
        )
        assert sub.total_nodes == 16
        assert sub.unit_capacity == 12 + 7

    def test_mu_lcm(self):
        sub = Subsystem(
            r=3, x=1, chunks=(Chunk(9, 2), Chunk(13, 3)), tier=Existence.KNOWN
        )
        assert sub.mu == 6

    def test_integrality_enforced(self):
        with pytest.raises(ValueError):
            Subsystem(r=3, x=1, chunks=(Chunk(8, 1),), tier=Existence.KNOWN)

    def test_capacity_requires_mu_multiple(self):
        sub = Subsystem(r=3, x=1, chunks=(Chunk(9, 2),), tier=Existence.KNOWN)
        with pytest.raises(ValueError):
            sub.capacity(3)

    def test_needs_chunks(self):
        with pytest.raises(ValueError):
            Subsystem(r=3, x=1, chunks=(), tier=Existence.KNOWN)


class TestSelectSubsystem:
    def test_trivial_stratum(self):
        sub = select_subsystem(71, 3, 2)
        assert sub.chunks == (Chunk(71, 1),)
        assert sub.unit_capacity == binom(71, 3)

    def test_partition_stratum(self):
        sub = select_subsystem(71, 3, 0)
        assert sub.chunks == (Chunk(69, 1),)  # 3 * floor(71/3)
        assert sub.unit_capacity == 23

    def test_intermediate_stratum_picks_largest(self):
        sub = select_subsystem(71, 3, 1, tier=Existence.KNOWN)
        assert sub.chunks == (Chunk(69, 1),)

    def test_none_when_nothing_fits(self):
        assert select_subsystem(4, 5, 1) is None
        assert select_subsystem(10, 5, 3, tier=Existence.KNOWN) is None

    def test_out_of_range_x(self):
        assert select_subsystem(10, 3, 3) is None

    def test_combo_selection_all_strata(self):
        subs = select_combo_subsystems(71, 5, 3, tier=Existence.KNOWN)
        assert len(subs) == 3
        assert subs[0].chunks[0].nx == 70  # 5 * 14
        assert subs[1].chunks[0].nx == 65  # unital H(4)
        assert subs[2].chunks[0].nx == 65  # S(3,5,65)

    def test_combo_validation(self):
        with pytest.raises(ValueError):
            select_combo_subsystems(10, 3, 4)


class TestChunkDecomposition:
    def test_single_chunk_when_exact(self):
        chunks = best_chunk_decomposition(69, 3, 2, max_chunks=3)
        assert chunks == [Chunk(69, 1)]

    def test_multi_chunk_beats_single_when_gappy(self):
        # For n = 10, r = 3, t = 2: orders are 3, 7, 9; two chunks (7 + 3)
        # beat the single 9 when capacity counts C(v,2).
        single = best_chunk_decomposition(10, 3, 2, max_chunks=1)
        multi = best_chunk_decomposition(10, 3, 2, max_chunks=2)
        cap = lambda chunks: sum(binom(c.nx, 2) for c in chunks)
        assert cap(multi) >= cap(single)

    def test_respects_budget(self):
        chunks = best_chunk_decomposition(100, 3, 2, max_chunks=3)
        assert sum(c.nx for c in chunks) <= 100

    def test_empty_when_no_orders(self):
        assert best_chunk_decomposition(10, 5, 4, tier=Existence.KNOWN) == []


class TestCapacityGap:
    def test_gap_zero_for_trivial(self):
        assert capacity_gap(100, 3, 2) == 0.0

    def test_gap_zero_at_exact_orders(self):
        assert capacity_gap(69, 3, 1) == pytest.approx(
            1 - binom(69, 2) / binom(69, 2)
        )

    def test_gap_positive_when_imperfect(self):
        gap = capacity_gap(70, 3, 1, max_chunks=1)
        assert gap == pytest.approx(1 - binom(69, 2) / binom(70, 2))

    def test_chunks_shrink_gap(self):
        one = capacity_gap(71, 5, 1, max_chunks=1)
        three = capacity_gap(71, 5, 1, max_chunks=3)
        assert three <= one

    def test_mu_relaxation_shrinks_gap(self):
        strict = capacity_gap(50, 5, 3, max_chunks=3, tier=Existence.KNOWN)
        relaxed = capacity_gap(
            50, 5, 3, max_chunks=3, max_mu=10, tier=Existence.DIVISIBILITY
        )
        assert relaxed <= strict

    def test_partition_gap(self):
        assert capacity_gap(71, 3, 0) == pytest.approx(1 - 69 / 71)
        assert capacity_gap(72, 3, 0) == 0.0
