"""Tests for the Placement value type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import Placement, PlacementError


def make(n, sets, strategy=""):
    return Placement.from_replica_sets(n, sets, strategy=strategy)


class TestConstruction:
    def test_basic(self):
        p = make(5, [(0, 1, 2), (2, 3, 4)])
        assert p.b == 2
        assert p.r == 3
        assert p.n == 5

    def test_rejects_duplicate_nodes(self):
        with pytest.raises(PlacementError):
            make(5, [(0, 0, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(PlacementError):
            make(3, [(0, 1, 3)])

    def test_rejects_mixed_r(self):
        with pytest.raises(PlacementError):
            make(5, [(0, 1, 2), (3, 4)])

    def test_rejects_empty(self):
        with pytest.raises(PlacementError):
            make(5, [])


class TestQueries:
    def test_loads(self):
        p = make(4, [(0, 1), (0, 2), (0, 3)])
        assert p.loads() == [3, 1, 1, 1]
        assert p.max_load() == 3

    def test_objects_on(self):
        p = make(4, [(0, 1), (0, 2), (2, 3)])
        assert p.objects_on(0) == [0, 1]
        assert p.objects_on(3) == [2]
        with pytest.raises(PlacementError):
            p.objects_on(4)

    def test_node_to_objects_matches_objects_on(self):
        p = make(4, [(0, 1), (0, 2), (2, 3)])
        table = p.node_to_objects()
        for node in range(4):
            assert table[node] == p.objects_on(node)

    def test_failed_objects_threshold(self):
        p = make(5, [(0, 1, 2), (2, 3, 4), (0, 3, 4)])
        assert p.failed_objects([0, 1], s=2) == [0]
        assert p.failed_objects([0, 1], s=1) == [0, 2]
        assert p.surviving_objects([0, 1], s=2) == [1, 2]

    def test_failed_plus_surviving_partition(self):
        p = make(6, [(0, 1, 2), (3, 4, 5), (0, 3, 5)])
        for s in (1, 2, 3):
            failed = set(p.failed_objects([0, 3], s))
            surviving = set(p.surviving_objects([0, 3], s))
            assert failed | surviving == {0, 1, 2}
            assert failed & surviving == set()


class TestCombinators:
    def test_restricted_to(self):
        p = make(5, [(0, 1), (1, 2), (3, 4)])
        sub = p.restricted_to([0, 2])
        assert sub.b == 2
        assert sub.replica_sets == (frozenset({0, 1}), frozenset({3, 4}))
        with pytest.raises(PlacementError):
            p.restricted_to([])

    def test_concatenated_with(self):
        a = make(5, [(0, 1)], strategy="A")
        b = make(5, [(2, 3)], strategy="B")
        both = a.concatenated_with(b)
        assert both.b == 2
        assert both.strategy == "A+B"

    def test_concatenate_mismatched_rejected(self):
        a = make(5, [(0, 1)])
        with pytest.raises(PlacementError):
            a.concatenated_with(make(6, [(0, 1)]))
        with pytest.raises(PlacementError):
            a.concatenated_with(make(5, [(0, 1, 2)]))


class TestSerialization:
    @settings(max_examples=25)
    @given(st.integers(4, 10), st.integers(1, 8), st.data())
    def test_roundtrip(self, n, b, data):
        r = data.draw(st.integers(1, min(3, n)))
        sets = [
            data.draw(
                st.lists(
                    st.integers(0, n - 1), min_size=r, max_size=r, unique=True
                )
            )
            for _ in range(b)
        ]
        p = make(n, sets, strategy="prop")
        again = Placement.from_dict(p.to_dict())
        assert again == p


class TestArrayCore:
    """The compact (b, r) array backing and its trusted fast paths."""

    def test_from_arrays_matches_from_replica_sets(self):
        sets = [(2, 0, 4), (1, 3, 2), (0, 1, 2)]
        via_sets = Placement.from_replica_sets(5, sets, strategy="x")
        via_rows = Placement.from_arrays(5, sets, strategy="x")
        assert via_rows == via_sets
        assert via_rows.fingerprint() == via_sets.fingerprint()

    def test_rows_are_sorted_canonical(self):
        p = Placement.from_arrays(6, [(5, 0, 3), (4, 2, 1)])
        flat = list(p.replica_array())
        assert flat == [0, 3, 5, 1, 2, 4]
        assert p.replica_sets == (frozenset({0, 3, 5}), frozenset({1, 2, 4}))

    def test_from_arrays_flat_requires_r(self):
        from array import array

        with pytest.raises(PlacementError):
            Placement.from_arrays(5, array("i", [0, 1, 2, 3]))
        p = Placement.from_arrays(5, array("i", [1, 0, 3, 2]), r=2)
        assert p.b == 2 and p.r == 2
        assert list(p.replica_array()) == [0, 1, 2, 3]

    def test_from_arrays_validates(self):
        with pytest.raises(PlacementError):
            Placement.from_arrays(5, [(0, 0, 1)])
        with pytest.raises(PlacementError):
            Placement.from_arrays(3, [(0, 1, 3)])
        with pytest.raises(PlacementError):
            Placement.from_arrays(3, [(-1, 1, 2)])

    def test_trusted_path_skips_validation(self):
        from array import array

        rows = array("i", [0, 1, 1, 2])  # duplicate in row 1: trusted anyway
        p = Placement.from_arrays(4, rows, r=2, validate=False)
        assert p.b == 2  # constructed without complaint (caller's contract)

    def test_node_csr_matches_node_incidence(self):
        p = make(6, [(0, 1, 2), (3, 4, 5), (0, 3, 5), (1, 3, 4)])
        node_off, node_objs = p.node_csr()
        for node in range(6):
            segment = list(node_objs[node_off[node]:node_off[node + 1]])
            assert segment == list(p.node_incidence()[node])
            assert segment == p.objects_on(node)

    def test_load_array_matches_profile(self):
        p = make(4, [(0, 1), (0, 2), (0, 3)])
        assert list(p.load_array()) == [3, 1, 1, 1]
        assert p.load_profile() == (3, 1, 1, 1)

    def test_fingerprint_ignores_strategy(self):
        a = make(5, [(0, 1), (2, 3)], strategy="A")
        b = make(5, [(0, 1), (2, 3)], strategy="B")
        assert a.fingerprint() == b.fingerprint()
        assert a != b  # equality still sees the label

    def test_pickle_roundtrip(self):
        import pickle

        p = make(7, [(0, 1, 2), (2, 3, 4), (4, 5, 6)], strategy="pkl")
        q = pickle.loads(pickle.dumps(p))
        assert q == p
        assert q.fingerprint() == p.fingerprint()
        assert q.replica_sets == p.replica_sets

    def test_relabeled_shares_structure(self):
        p = make(5, [(0, 1), (2, 3)], strategy="A")
        q = p.relabeled("B")
        assert q.strategy == "B"
        assert q.fingerprint() == p.fingerprint()
        assert q.replica_array() is p.replica_array()

    def test_failed_objects_brute_force_equivalence(self):
        p = make(7, [(0, 1, 2), (2, 3, 4), (4, 5, 6), (0, 3, 6), (1, 3, 5)])
        for failed in ([], [0], [0, 3], [1, 2, 4, 6], list(range(7))):
            failed_set = frozenset(failed)
            for s in (1, 2, 3):
                expect_failed = [
                    i for i, nodes in enumerate(p.replica_sets)
                    if len(nodes & failed_set) >= s
                ]
                assert p.failed_objects(failed, s) == expect_failed
                expect_surviving = [
                    i for i, nodes in enumerate(p.replica_sets)
                    if len(nodes & failed_set) < s
                ]
                assert p.surviving_objects(failed, s) == expect_surviving

    def test_failed_objects_ignores_out_of_range_nodes(self):
        p = make(4, [(0, 1), (2, 3)])
        assert p.failed_objects([0, 1, 9, -2], 2) == [0]
        assert p.surviving_objects([9], 1) == [0, 1]

    def test_restricted_and_concatenated_stay_canonical(self):
        p = make(5, [(4, 0), (1, 2), (3, 4)])
        sub = p.restricted_to([2, 0])
        assert list(sub.replica_array()) == [3, 4, 0, 4]
        both = sub.concatenated_with(make(5, [(2, 1)]))
        assert both.b == 3
        assert list(both.replica_array()) == [3, 4, 0, 4, 1, 2]
