"""Tests for the Placement value type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import Placement, PlacementError


def make(n, sets, strategy=""):
    return Placement.from_replica_sets(n, sets, strategy=strategy)


class TestConstruction:
    def test_basic(self):
        p = make(5, [(0, 1, 2), (2, 3, 4)])
        assert p.b == 2
        assert p.r == 3
        assert p.n == 5

    def test_rejects_duplicate_nodes(self):
        with pytest.raises(PlacementError):
            make(5, [(0, 0, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(PlacementError):
            make(3, [(0, 1, 3)])

    def test_rejects_mixed_r(self):
        with pytest.raises(PlacementError):
            make(5, [(0, 1, 2), (3, 4)])

    def test_rejects_empty(self):
        with pytest.raises(PlacementError):
            make(5, [])


class TestQueries:
    def test_loads(self):
        p = make(4, [(0, 1), (0, 2), (0, 3)])
        assert p.loads() == [3, 1, 1, 1]
        assert p.max_load() == 3

    def test_objects_on(self):
        p = make(4, [(0, 1), (0, 2), (2, 3)])
        assert p.objects_on(0) == [0, 1]
        assert p.objects_on(3) == [2]
        with pytest.raises(PlacementError):
            p.objects_on(4)

    def test_node_to_objects_matches_objects_on(self):
        p = make(4, [(0, 1), (0, 2), (2, 3)])
        table = p.node_to_objects()
        for node in range(4):
            assert table[node] == p.objects_on(node)

    def test_failed_objects_threshold(self):
        p = make(5, [(0, 1, 2), (2, 3, 4), (0, 3, 4)])
        assert p.failed_objects([0, 1], s=2) == [0]
        assert p.failed_objects([0, 1], s=1) == [0, 2]
        assert p.surviving_objects([0, 1], s=2) == [1, 2]

    def test_failed_plus_surviving_partition(self):
        p = make(6, [(0, 1, 2), (3, 4, 5), (0, 3, 5)])
        for s in (1, 2, 3):
            failed = set(p.failed_objects([0, 3], s))
            surviving = set(p.surviving_objects([0, 3], s))
            assert failed | surviving == {0, 1, 2}
            assert failed & surviving == set()


class TestCombinators:
    def test_restricted_to(self):
        p = make(5, [(0, 1), (1, 2), (3, 4)])
        sub = p.restricted_to([0, 2])
        assert sub.b == 2
        assert sub.replica_sets == (frozenset({0, 1}), frozenset({3, 4}))
        with pytest.raises(PlacementError):
            p.restricted_to([])

    def test_concatenated_with(self):
        a = make(5, [(0, 1)], strategy="A")
        b = make(5, [(2, 3)], strategy="B")
        both = a.concatenated_with(b)
        assert both.b == 2
        assert both.strategy == "A+B"

    def test_concatenate_mismatched_rejected(self):
        a = make(5, [(0, 1)])
        with pytest.raises(PlacementError):
            a.concatenated_with(make(6, [(0, 1)]))
        with pytest.raises(PlacementError):
            a.concatenated_with(make(5, [(0, 1, 2)]))


class TestSerialization:
    @settings(max_examples=25)
    @given(st.integers(4, 10), st.integers(1, 8), st.data())
    def test_roundtrip(self, n, b, data):
        r = data.draw(st.integers(1, min(3, n)))
        sets = [
            data.draw(
                st.lists(
                    st.integers(0, n - 1), min_size=r, max_size=r, unique=True
                )
            )
            for _ in range(b)
        ]
        p = make(n, sets, strategy="prop")
        again = Placement.from_dict(p.to_dict())
        assert again == p
