"""Engine-state snapshots: hydrated engines are bit-for-bit cold builds."""

import json
import os
import random
import tempfile
import zipfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import native
from repro.core.artifact import ArtifactError, load_engine_state
from repro.core.batch import (
    AttackCell,
    AttackEngine,
    clear_attack_caches,
    configure_engine_state_dir,
    engine_for,
    hydrate_engine,
    snapshot_engine,
)
from repro.core.kernels import GAIN_BACKINGS, numpy_available
from repro.core.random_placement import RandomStrategy


def available_gain_backings():
    return [
        backing
        for backing in GAIN_BACKINGS
        if (backing != "numpy" or numpy_available())
        and (backing != "native" or native.available())
    ]


def random_placement(n, r, b, seed):
    return RandomStrategy(n, r).place(b, random.Random(seed))


@pytest.fixture(autouse=True)
def _fresh_engine_caches():
    clear_attack_caches()
    configure_engine_state_dir(None)
    yield
    clear_attack_caches()
    configure_engine_state_dir(None)


def _grid(placement):
    return [
        AttackCell(k, s, "fast")
        for s in range(1, placement.r + 1)
        for k in (2, 3)
    ]


def _attack_all(engine, cells, seed=7):
    results = []
    warm = None
    for cell in cells:
        attack = engine.attack(cell, seed=seed, warm_start=warm, cache=False)
        warm = attack.nodes
        results.append(attack)
    return results


def _packed_states(engine):
    states = {}
    for s in range(1, engine.placement.r + 1):
        kernel = engine.kernel(s)
        export = getattr(kernel, "export_state", None)
        if export is not None:
            states[s] = export(kernel.empty_hits())
    return states


def _snapshot_round_trip(placement, backend="gain"):
    """Cold-build, snapshot, drop caches, hydrate; return both engines."""
    cold = AttackEngine(placement, backend=backend)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "engine.npz")
        snapshot_engine(cold, path)
        clear_attack_caches()
        warm = hydrate_engine(path, backend=backend, mmap=False, validate=True)
        assert warm is not None
        # Resolve lazily-built kernels while the file still exists.
        warm_states = _packed_states(warm)
        warm_results = _attack_all(warm, _grid(placement))
    return cold, warm, warm_states, warm_results


class TestHydratedEqualsColdBuilt:
    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=14),
        r=st.integers(min_value=2, max_value=3),
        b=st.integers(min_value=16, max_value=48),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_property_hydrated_attacks_and_states_match(self, n, r, b, seed):
        clear_attack_caches()
        placement = random_placement(n, r, b, seed)
        cold, warm, warm_states, warm_results = _snapshot_round_trip(placement)
        assert warm.placement.fingerprint() == placement.fingerprint()
        assert warm.placement.to_dict() == placement.to_dict()
        assert _packed_states(cold) == warm_states
        assert _attack_all(cold, _grid(placement)) == warm_results

    @pytest.mark.parametrize("backing", available_gain_backings())
    def test_every_backing_hydrates_bit_identically(
        self, backing, monkeypatch
    ):
        monkeypatch.setenv("REPRO_GAIN_BACKING", backing)
        placement = random_placement(12, 3, 40, 13)
        cold, warm, warm_states, warm_results = _snapshot_round_trip(placement)
        assert warm.kernel(2).backing == backing
        assert _packed_states(cold) == warm_states
        assert _attack_all(cold, _grid(placement)) == warm_results

    @pytest.mark.skipif(not native.available(), reason="native kernel absent")
    @pytest.mark.parametrize("threads", (1, 2, 4))
    def test_native_thread_count_does_not_change_hydration(
        self, threads, monkeypatch
    ):
        monkeypatch.setenv("REPRO_GAIN_BACKING", "native")
        before = native.thread_count()
        native.configure_threads(threads)
        try:
            placement = random_placement(12, 3, 48, 17)
            cold, warm, warm_states, warm_results = _snapshot_round_trip(
                placement
            )
            assert _packed_states(cold) == warm_states
            assert _attack_all(cold, _grid(placement)) == warm_results
        finally:
            native.configure_threads(before)

    def test_non_gain_backend_round_trips_placement_only(self):
        placement = random_placement(11, 3, 30, 19)
        cold, warm, warm_states, warm_results = _snapshot_round_trip(
            placement, backend="bitset"
        )
        assert warm_states == {}
        assert _attack_all(cold, _grid(placement)) == warm_results


def _rewrite_members(path, mutate):
    """Round-trip the zip through a dict of members, applying ``mutate``."""
    with zipfile.ZipFile(path) as archive:
        members = {name: archive.read(name) for name in archive.namelist()}
    mutate(members)
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        for name, blob in members.items():
            archive.writestr(name, blob)


def _flip_last_byte(members, name):
    blob = members[name]
    members[name] = blob[:-1] + bytes([blob[-1] ^ 0xFF])


def _edit_header(members, **updates):
    header = json.loads(members["header.json"])
    header.update(updates)
    members["header.json"] = json.dumps(header).encode()


class TestChecksumGatedTrust:
    def _snapshot(self, tmp_path):
        placement = random_placement(10, 3, 24, 23)
        path = str(tmp_path / "engine.npz")
        snapshot_engine(AttackEngine(placement, backend="gain"), path)
        return path

    @pytest.mark.parametrize("mmap", (False, True))
    def test_tampered_packed_state_is_rejected(self, tmp_path, mmap):
        path = self._snapshot(tmp_path)
        _rewrite_members(path, lambda m: _flip_last_byte(m, "state_2.npy"))
        with pytest.raises(ArtifactError, match="state_2"):
            load_engine_state(path, mmap=mmap)

    @pytest.mark.parametrize("mmap", (False, True))
    def test_tampered_rows_fail_the_fingerprint(self, tmp_path, mmap):
        path = self._snapshot(tmp_path)
        _rewrite_members(path, lambda m: _flip_last_byte(m, "rows.npy"))
        with pytest.raises(ArtifactError, match="fingerprint"):
            load_engine_state(path, mmap=mmap)

    def test_corruption_stays_hard_through_hydrate(self, tmp_path):
        path = self._snapshot(tmp_path)
        _rewrite_members(path, lambda m: _flip_last_byte(m, "node_objs.npy"))
        with pytest.raises(ArtifactError):
            hydrate_engine(path)

    def test_not_a_zip_is_rejected(self, tmp_path):
        path = str(tmp_path / "engine.npz")
        with open(path, "wb") as handle:
            handle.write(b"definitely not a zip archive")
        with pytest.raises(ArtifactError, match="zip"):
            load_engine_state(path)


class TestVersionSkewFallsBackToRebuild:
    def _snapshot(self, tmp_path):
        placement = random_placement(10, 3, 24, 29)
        path = str(tmp_path / "engine.npz")
        snapshot_engine(AttackEngine(placement, backend="gain"), path)
        return path

    def test_newer_artifact_version_hydrates_as_none(self, tmp_path):
        path = self._snapshot(tmp_path)
        _rewrite_members(path, lambda m: _edit_header(m, version=99))
        assert hydrate_engine(path) is None

    def test_packed_state_version_mismatch_hydrates_as_none(self, tmp_path):
        path = self._snapshot(tmp_path)
        _rewrite_members(path, lambda m: _edit_header(m, state_version=99))
        assert hydrate_engine(path) is None


@pytest.fixture
def metrics_on():
    obs.set_metrics(True)
    yield
    obs.set_metrics(None)
    obs.reset_metrics()


class TestEngineStateDir:
    def test_cold_build_persists_and_next_process_hydrates(
        self, tmp_path, metrics_on
    ):
        configure_engine_state_dir(str(tmp_path))
        placement = random_placement(12, 3, 40, 31)
        cold = engine_for(placement, "gain")
        snapshot = tmp_path / (placement.fingerprint() + ".npz")
        assert snapshot.exists()
        cold_results = _attack_all(cold, _grid(placement))

        clear_attack_caches()  # simulate a fresh process over the same dir
        hydrations = obs.counter_value("engine.hydrations")
        builds = obs.counter_value("engine.builds")
        warm = engine_for(placement, "gain")
        assert obs.counter_value("engine.hydrations") == hydrations + 1
        assert obs.counter_value("engine.builds") == builds
        assert _attack_all(warm, _grid(placement)) == cold_results

    def test_unusable_snapshot_degrades_to_cold_build(self, tmp_path):
        configure_engine_state_dir(str(tmp_path))
        placement = random_placement(12, 3, 40, 37)
        snapshot = tmp_path / (placement.fingerprint() + ".npz")
        snapshot.write_bytes(b"garbage, not an artifact")
        with pytest.warns(RuntimeWarning, match="cold build path"):
            engine = engine_for(placement, "gain")
        reference = AttackEngine(placement, backend="gain")
        assert _attack_all(engine, _grid(placement)) == _attack_all(
            reference, _grid(placement)
        )
