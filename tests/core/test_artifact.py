"""Tests for the binary placement artifact format (core/artifact.py)."""

import json
import random
import zipfile

import pytest

from repro.core import artifact
from repro.core.artifact import (
    ArtifactError,
    load_npz,
    load_placement,
    save_npz,
    save_placement,
)
from repro.core.kernels import numpy_available
from repro.core.placement import Placement, PlacementError
from repro.core.random_placement import RandomStrategy


@pytest.fixture
def placement():
    return RandomStrategy(17, 3).place(120, random.Random(7))


class TestNpzRoundtrip:
    def test_roundtrip_equality(self, placement, tmp_path):
        path = str(tmp_path / "p.npz")
        save_npz(placement, path)
        again = load_npz(path)
        assert again == placement
        assert again.fingerprint() == placement.fingerprint()
        assert again.strategy == placement.strategy

    def test_roundtrip_with_validation(self, placement, tmp_path):
        path = str(tmp_path / "p.npz")
        save_npz(placement, path)
        assert load_npz(path, validate=True) == placement

    def test_extension_dispatch(self, placement, tmp_path):
        npz = str(tmp_path / "p.npz")
        js = str(tmp_path / "p.json")
        save_placement(placement, npz)
        save_placement(placement, js)
        assert load_placement(npz) == placement
        assert load_placement(js) == placement
        # The JSON artifact is the exact to_dict snapshot.
        with open(js, encoding="utf-8") as handle:
            assert json.load(handle) == placement.to_dict()

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_numpy_can_open_the_archive(self, placement, tmp_path):
        import numpy as np

        path = str(tmp_path / "p.npz")
        save_npz(placement, path)
        archive = np.load(path)
        assert (archive["rows"] == placement.replica_matrix()).all()
        assert archive["rows"].dtype == np.int32


class TestNpzIntegrity:
    def _rewrite(self, path, out, header=None, blob=None):
        with zipfile.ZipFile(path) as original:
            stored_header = json.loads(original.read("header.json"))
            stored_blob = original.read("rows.npy")
        with zipfile.ZipFile(out, "w") as replacement:
            replacement.writestr(
                "header.json", json.dumps(header or stored_header)
            )
            replacement.writestr("rows.npy", blob or stored_blob)
        return out

    def test_corrupt_rows_detected(self, placement, tmp_path):
        path = str(tmp_path / "p.npz")
        save_npz(placement, path)
        with zipfile.ZipFile(path) as original:
            blob = original.read("rows.npy")
        evil = blob[:-4] + b"\x01\x00\x00\x00"
        bad = self._rewrite(path, str(tmp_path / "bad.npz"), blob=evil)
        with pytest.raises(ArtifactError, match="checksum"):
            load_npz(bad)

    def test_unknown_format_rejected(self, placement, tmp_path):
        path = str(tmp_path / "p.npz")
        save_npz(placement, path)
        with zipfile.ZipFile(path) as original:
            header = json.loads(original.read("header.json"))
        header["format"] = "not-a-placement"
        bad = self._rewrite(path, str(tmp_path / "bad.npz"), header=header)
        with pytest.raises(ArtifactError, match="format"):
            load_npz(bad)

    def test_newer_version_rejected(self, placement, tmp_path):
        path = str(tmp_path / "p.npz")
        save_npz(placement, path)
        with zipfile.ZipFile(path) as original:
            header = json.loads(original.read("header.json"))
        header["version"] = artifact.PLACEMENT_VERSION + 1
        bad = self._rewrite(path, str(tmp_path / "bad.npz"), header=header)
        with pytest.raises(ArtifactError, match="version"):
            load_npz(bad)

    def test_not_a_zip_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(ArtifactError, match="zip"):
            load_npz(str(path))

    def test_shape_mismatch_rejected(self, placement, tmp_path):
        path = str(tmp_path / "p.npz")
        save_npz(placement, path)
        with zipfile.ZipFile(path) as original:
            header = json.loads(original.read("header.json"))
        header["b"] = header["b"] - 1
        bad = self._rewrite(path, str(tmp_path / "bad.npz"), header=header)
        with pytest.raises(ArtifactError, match="rows.npy holds"):
            load_npz(bad)

    def test_invalid_json_placement_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ArtifactError, match="JSON"):
            load_placement(str(path))

    def test_json_boundary_still_validates(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"n": 3, "strategy": "", "replica_sets": [[0, 7]]})
        )
        with pytest.raises(PlacementError):
            load_placement(str(path))


class TestTrustBoundary:
    def test_boundary_loader_validates_npz_by_default(self, tmp_path):
        # A checksum-consistent artifact from an unknown writer can still
        # hold invalid rows; the extension-dispatch (CLI) loader must
        # catch them instead of passing them to the kernels' index paths.
        import hashlib
        import struct
        from array import array as _array

        rows = _array("i", [0, 1, -5, 0])
        data = rows.tobytes()
        npy_header = (
            "{'descr': '<i4', 'fortran_order': False, 'shape': (2, 2), }"
        ).encode()
        pad = -(6 + 2 + 2 + len(npy_header) + 1) % 64
        blob = (
            b"\x93NUMPY" + bytes((1, 0))
            + struct.pack("<H", len(npy_header) + pad + 1)
            + npy_header + b" " * pad + b"\n" + data
        )
        header = {
            "format": artifact.PLACEMENT_FORMAT,
            "version": artifact.PLACEMENT_VERSION,
            "n": 12, "b": 2, "r": 2, "strategy": "evil",
            "sha256": hashlib.sha256(data).hexdigest(),
        }
        path = str(tmp_path / "evil.npz")
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("header.json", json.dumps(header))
            archive.writestr("rows.npy", blob)
        with pytest.raises(PlacementError):
            load_placement(path)

    def test_missing_header_fields_rejected(self, placement, tmp_path):
        path = str(tmp_path / "p.npz")
        save_npz(placement, path)
        with zipfile.ZipFile(path) as original:
            blob = original.read("rows.npy")
        bad = str(tmp_path / "bad.npz")
        with zipfile.ZipFile(bad, "w") as replacement:
            replacement.writestr(
                "header.json",
                json.dumps({
                    "format": artifact.PLACEMENT_FORMAT,
                    "version": artifact.PLACEMENT_VERSION,
                }),
            )
            replacement.writestr("rows.npy", blob)
        with pytest.raises(ArtifactError, match="malformed artifact header"):
            load_npz(bad)

    def test_checksummed_reload_skips_validation(self, tmp_path, monkeypatch):
        placement = Placement.from_replica_sets(9, [(0, 1, 2), (3, 4, 5)])
        path = str(tmp_path / "p.npz")
        save_npz(placement, path)
        calls = []
        original = Placement._validate_rows

        def spy(self):
            calls.append(self)
            return original(self)

        monkeypatch.setattr(Placement, "_validate_rows", spy)
        load_npz(path)
        assert calls == []  # trusted path: no O(b r) re-validation
        load_npz(path, validate=True)
        assert len(calls) == 1


class TestMmapLoading:
    def _saved(self, placement, tmp_path):
        path = str(tmp_path / "p.npz")
        save_npz(placement, path)
        return path

    def test_mmap_matches_eager(self, placement, tmp_path):
        path = self._saved(placement, tmp_path)
        eager = load_npz(path)
        mapped = load_npz(path, mmap=True)
        assert mapped == placement
        assert mapped.fingerprint() == eager.fingerprint()
        assert mapped.strategy == eager.strategy
        assert (mapped.n, mapped.b, mapped.r) == (eager.n, eager.b, eager.r)
        # The rows really are a view over the file, not a heap copy.
        assert isinstance(mapped.replica_array(), memoryview)

    def test_mmap_csr_and_kernel_match(self, placement, tmp_path):
        from repro.core.kernels import make_kernel

        path = self._saved(placement, tmp_path)
        eager = load_npz(path)
        mapped = load_npz(path, mmap=True)
        eager_off, eager_objs = eager.node_csr()
        mapped_off, mapped_objs = mapped.node_csr()
        assert bytes(mapped_off) == bytes(eager_off)
        assert bytes(mapped_objs) == bytes(eager_objs)
        eager_kernel = make_kernel(eager, 2)
        mapped_kernel = make_kernel(mapped, 2)
        for nodes in ([0], [1, 4], [2, 3, 5]):
            assert mapped_kernel.damage_for(nodes) == eager_kernel.damage_for(
                nodes
            )

    def test_boundary_loader_mmap_roundtrip(self, placement, tmp_path):
        path = self._saved(placement, tmp_path)
        assert load_placement(path, mmap=True) == placement

    def test_mmap_still_rejects_tampered_rows(self, placement, tmp_path):
        path = self._saved(placement, tmp_path)
        with zipfile.ZipFile(path) as original:
            header = original.read("header.json")
            blob = original.read("rows.npy")
        evil = blob[:-4] + b"\x01\x00\x00\x00"
        bad = str(tmp_path / "bad.npz")
        with zipfile.ZipFile(bad, "w") as replacement:
            replacement.writestr("header.json", header)
            replacement.writestr("rows.npy", evil)
        with pytest.raises(ArtifactError, match="checksum"):
            load_npz(bad, mmap=True)
        with pytest.raises(ArtifactError, match="checksum"):
            load_placement(bad, mmap=True)

    def test_mmap_validates_structure_in_place(self, placement, tmp_path):
        # Checksum-consistent but structurally invalid rows must still be
        # rejected on the boundary path without copying the view.
        import hashlib
        import struct
        from array import array as _array

        data = _array("i", [0, 1, 9, 0]).tobytes()
        npy_header = (
            "{'descr': '<i4', 'fortran_order': False, 'shape': (2, 2), }"
        ).encode()
        pad = -(6 + 2 + 2 + len(npy_header) + 1) % 64
        blob = (
            b"\x93NUMPY" + bytes((1, 0))
            + struct.pack("<H", len(npy_header) + pad + 1)
            + npy_header + b" " * pad + b"\n" + data
        )
        header = {
            "format": artifact.PLACEMENT_FORMAT,
            "version": artifact.PLACEMENT_VERSION,
            "n": 4, "b": 2, "r": 2, "strategy": "evil",
            "sha256": hashlib.sha256(data).hexdigest(),
        }
        path = str(tmp_path / "evil.npz")
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("header.json", json.dumps(header))
            archive.writestr("rows.npy", blob)
        with pytest.raises(ArtifactError, match="sorted distinct"):
            load_npz(path, validate=True, mmap=True)

    def test_compressed_archive_falls_back_to_eager(
        self, placement, tmp_path
    ):
        path = self._saved(placement, tmp_path)
        with zipfile.ZipFile(path) as original:
            header = original.read("header.json")
            blob = original.read("rows.npy")
        packed = str(tmp_path / "packed.npz")
        with zipfile.ZipFile(
            packed, "w", zipfile.ZIP_DEFLATED
        ) as replacement:
            replacement.writestr("header.json", header)
            replacement.writestr("rows.npy", blob)
        loaded = load_npz(packed, mmap=True)
        assert loaded == placement
        # Eager fallback: a plain heap buffer, not a view.
        assert not isinstance(loaded.replica_array(), memoryview)

    def test_mmap_refusal_falls_back_to_eager(
        self, placement, tmp_path, monkeypatch
    ):
        path = self._saved(placement, tmp_path)

        def refuse(*args, **kwargs):
            raise OSError("filesystem refuses mmap")

        monkeypatch.setattr(artifact._mmaplib, "mmap", refuse)
        loaded = load_npz(path, mmap=True)
        assert loaded == placement
        assert not isinstance(loaded.replica_array(), memoryview)

    def test_mmap_fallback_warns_once_naming_the_reason(
        self, placement, tmp_path, monkeypatch
    ):
        import warnings as _warnings

        import pytest

        path = self._saved(placement, tmp_path)

        def refuse(*args, **kwargs):
            raise OSError("one-shot warning probe")

        monkeypatch.setattr(artifact._mmaplib, "mmap", refuse)
        artifact._MMAP_FALLBACK_WARNED.clear()
        with pytest.warns(RuntimeWarning, match="one-shot warning probe"):
            load_npz(path, mmap=True)
        # Same reason again: degradation already surfaced, stay quiet.
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            load_npz(path, mmap=True)
