"""Contract tests on the Fig. 9 cell computation (the headline comparison).

The improvement metric and winner classification are load-bearing for the
whole evaluation, so their edge cases get dedicated coverage here (the
bench asserts the paper's trends; these pin the cell semantics).
"""

import math

from repro.analysis.fig9 import Fig9Cell, generate


class TestCellSemantics:
    def test_positive_improvement(self):
        cell = Fig9Cell(b=100, k=3, lb_combo=95, pr_avail=90)
        assert cell.improvement_percent == 50.0
        assert cell.winner == "combo"

    def test_negative_improvement(self):
        cell = Fig9Cell(b=100, k=3, lb_combo=80, pr_avail=90)
        assert cell.improvement_percent == -100.0
        assert cell.winner == "random"

    def test_tie(self):
        cell = Fig9Cell(b=100, k=3, lb_combo=90, pr_avail=90)
        assert cell.improvement_percent == 0.0
        assert cell.winner == "tie"

    def test_perfect_random_yields_nan(self):
        cell = Fig9Cell(b=100, k=3, lb_combo=99, pr_avail=100)
        assert math.isnan(cell.improvement_percent)

    def test_improvement_capped_at_100(self):
        # lb <= b always, so (lb - pr) <= (b - pr): metric is <= 100%.
        cell = Fig9Cell(b=100, k=3, lb_combo=100, pr_avail=40)
        assert cell.improvement_percent == 100.0


class TestGenerateContract:
    def test_tables_cover_requested_grid(self):
        result = generate(31, 4, r_values=(3,), b_values=(600, 1200))
        shapes = {(t.r, t.s) for t in result.tables}
        assert shapes == {(3, 2), (3, 3)}
        for table in result.tables:
            assert set(table.k_values) == set(range(table.s, 5))
            assert len(table.cells) == 2 * len(table.k_values)

    def test_lb_never_exceeds_b(self):
        result = generate(31, 4, r_values=(2, 3), b_values=(600, 4800))
        for table in result.tables:
            for cell in table.cells.values():
                assert 0 <= cell.lb_combo <= cell.b
                assert 0 <= cell.pr_avail <= cell.b

    def test_grid_render_marks_nan_cells(self):
        result = generate(31, 4, r_values=(2,), b_values=(600,))
        text = result.render()
        assert "Fig 9 (n=31)" in text
