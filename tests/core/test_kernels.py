"""Property tests: all damage-kernel backends agree with the legacy oracle.

The three backends (bitset / numpy / python) implement one contract; these
tests drive them with hypothesis-generated random placements and assert
they agree with each other and with the reference ``damage()`` function on
damage evaluation, ``best_addition`` and branch-and-bound optimistic
bounds. The pure-python kernel doubles as the oracle for the other two.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import native
from repro.core.adversary import damage
from repro.core.kernels import (
    BACKENDS,
    GAIN_BACKINGS,
    Incidence,
    force_backend,
    make_kernel,
    numpy_available,
    resolve_backend,
    resolve_gain_backing,
)
from repro.core.random_placement import RandomStrategy


def available_backends():
    return [b for b in BACKENDS if b != "numpy" or numpy_available()]


def available_gain_backings():
    return [
        backing
        for backing in GAIN_BACKINGS
        if (backing != "numpy" or numpy_available())
        and (backing != "native" or native.available())
    ]


def random_placement(n, r, b, seed):
    return RandomStrategy(n, r).place(b, random.Random(seed))


def kernels_for(placement, s):
    incidence = Incidence(placement)
    return [
        make_kernel(placement, s, backend=name, incidence=incidence)
        for name in available_backends()
    ]


placements = st.builds(
    random_placement,
    n=st.integers(5, 14),
    r=st.integers(2, 4),
    b=st.integers(1, 40),
    seed=st.integers(0, 10_000),
).filter(lambda p: p.r <= p.n)


class TestDamageAgreement:
    @settings(max_examples=40, deadline=None)
    @given(placements, st.data())
    def test_damage_matches_legacy_oracle(self, placement, data):
        s = data.draw(st.integers(1, placement.r))
        k = data.draw(st.integers(1, placement.n - 1))
        nodes = data.draw(
            st.permutations(range(placement.n)).map(lambda p: list(p)[:k])
        )
        expected = damage(placement, nodes, s)
        for kernel in kernels_for(placement, s):
            assert kernel.damage_for(nodes) == expected, kernel.name

    @settings(max_examples=25, deadline=None)
    @given(placements, st.data())
    def test_incremental_add_remove_roundtrip(self, placement, data):
        s = data.draw(st.integers(1, placement.r))
        moves = data.draw(
            st.lists(st.integers(0, placement.n - 1), min_size=1, max_size=8)
        )
        for kernel in kernels_for(placement, s):
            hits = kernel.empty_hits()
            active = []
            for node in moves:
                if node in active:
                    hits = kernel.remove_node(hits, node)
                    active.remove(node)
                else:
                    hits = kernel.add_node(hits, node)
                    active.append(node)
                assert kernel.damage_of(hits) == damage(placement, active, s), (
                    kernel.name
                )


class TestBestAddition:
    @settings(max_examples=30, deadline=None)
    @given(placements, st.data())
    def test_backends_agree_exactly(self, placement, data):
        s = data.draw(st.integers(1, placement.r))
        base_size = data.draw(st.integers(0, min(4, placement.n - 2)))
        base = data.draw(
            st.permutations(range(placement.n)).map(lambda p: list(p)[:base_size])
        )
        banned = base
        outcomes = []
        for kernel in kernels_for(placement, s):
            hits = kernel.hits_for(base)
            outcomes.append((kernel.name, kernel.best_addition(hits, banned)))
        reference = outcomes[0][1]
        for name, outcome in outcomes[1:]:
            assert outcome == reference, (name, outcomes)

    @settings(max_examples=30, deadline=None)
    @given(placements, st.data())
    def test_best_addition_is_truly_best(self, placement, data):
        s = data.draw(st.integers(1, placement.r))
        base_size = data.draw(st.integers(0, min(3, placement.n - 2)))
        base = data.draw(
            st.permutations(range(placement.n)).map(lambda p: list(p)[:base_size])
        )
        kernel = make_kernel(placement, s, backend="python")
        hits = kernel.hits_for(base)
        node, best = kernel.best_addition(hits, banned=base)
        assert node not in base
        assert best == damage(placement, base + [node], s)
        for candidate in range(placement.n):
            if candidate in base:
                continue
            assert damage(placement, base + [candidate], s) <= best


class TestOptimisticBound:
    @settings(max_examples=25, deadline=None)
    @given(placements, st.data())
    def test_bound_sound_and_backend_independent(self, placement, data):
        s = data.draw(st.integers(1, placement.r))
        n = placement.n
        start = data.draw(st.integers(0, n))
        slots = data.draw(st.integers(1, 3))
        base_size = data.draw(st.integers(0, 2))
        base = data.draw(
            st.permutations(range(placement.n)).map(lambda p: list(p)[:base_size])
        )
        bounds = []
        for kernel in kernels_for(placement, s):
            hits = kernel.hits_for(base)
            bounds.append(kernel.optimistic_bound(hits, start, slots))
        assert len(set(bounds)) == 1, dict(zip(available_backends(), bounds))
        # Soundness: no completion from nodes >= start can beat the bound.
        completions = [
            nodes
            for count in range(min(slots, n - start) + 1)
            for nodes in itertools.combinations(range(start, n), count)
        ]
        best_completion = max(
            damage(placement, list(base) + list(extra), s) for extra in completions
        )
        assert bounds[0] >= best_completion


class TestGainBackings:
    """Every gain backing agrees bit-for-bit with the full-scan oracles
    under interleaved add/remove/swap sequences — same damages, same
    best_addition outcomes (tie-breaks included), same bounds, and bulk
    rebuilds indistinguishable from replayed incremental updates."""

    @staticmethod
    def _gain_kernels(placement, s, incidence):
        return {
            backing: make_kernel(
                placement, s, backend="gain", incidence=incidence,
                gain_backing=backing,
            )
            for backing in available_gain_backings()
        }

    @settings(max_examples=25, deadline=None)
    @given(placements, st.data())
    def test_interleaved_sequences_bit_for_bit(self, placement, data):
        s = data.draw(st.integers(1, placement.r))
        moves = data.draw(
            st.lists(st.integers(0, placement.n - 1), min_size=1, max_size=10)
        )
        incidence = Incidence(placement)
        oracle = make_kernel(placement, s, backend="python", incidence=incidence)
        kernels = self._gain_kernels(placement, s, incidence)
        states = {name: kernel.empty_hits() for name, kernel in kernels.items()}
        oracle_hits = oracle.empty_hits()
        active = []
        for node in moves:
            if node in active:
                active.remove(node)
                oracle_hits = oracle.remove_node(oracle_hits, node)
                for name, kernel in kernels.items():
                    states[name] = kernel.remove_node(states[name], node)
            else:
                active.append(node)
                oracle_hits = oracle.add_node(oracle_hits, node)
                for name, kernel in kernels.items():
                    states[name] = kernel.add_node(states[name], node)
            expected_damage = oracle.damage_of(oracle_hits)
            assert expected_damage == damage(placement, active, s)
            expected_best = oracle.best_addition(oracle_hits, active)
            for name, kernel in kernels.items():
                assert kernel.damage_of(states[name]) == expected_damage, name
                assert kernel.best_addition(states[name], active) == expected_best, name
        # Bulk rebuilds must be indistinguishable from the incremental path.
        expected_best = oracle.best_addition(oracle_hits, active)
        for name, kernel in kernels.items():
            bulk = kernel.hits_for(active)
            assert kernel.damage_of(bulk) == oracle.damage_of(oracle_hits), name
            assert kernel.best_addition(bulk, active) == expected_best, name

    @settings(max_examples=20, deadline=None)
    @given(placements, st.data())
    def test_swap_positions_match_full_scan(self, placement, data):
        s = data.draw(st.integers(1, placement.r))
        k = data.draw(st.integers(1, min(4, placement.n - 1)))
        seed_nodes = data.draw(
            st.permutations(range(placement.n)).map(lambda p: list(p)[:k])
        )
        incidence = Incidence(placement)
        oracle = make_kernel(placement, s, backend="bitset", incidence=incidence)
        oracle_hits = oracle.hits_for(seed_nodes)
        current = oracle.damage_of(oracle_hits)
        banned = set(seed_nodes) - {seed_nodes[0]}
        _, expected_swap, expected_damage = oracle.try_swap(
            oracle_hits, seed_nodes[0], banned, current
        )
        expected_pass_nodes = list(seed_nodes)
        pass_hits = oracle.hits_for(seed_nodes)
        _, expected_pass_damage, expected_improved = oracle.polish_pass(
            pass_hits, expected_pass_nodes, current
        )
        for backing, kernel in self._gain_kernels(placement, s, incidence).items():
            hits = kernel.hits_for(seed_nodes)
            _, swapped, dmg = kernel.try_swap(
                hits, seed_nodes[0], set(seed_nodes) - {seed_nodes[0]}, current
            )
            assert (swapped, dmg) == (expected_swap, expected_damage), backing
            nodes = list(seed_nodes)
            hits = kernel.hits_for(seed_nodes)
            _, pass_damage, improved = kernel.polish_pass(hits, nodes, current)
            assert nodes == expected_pass_nodes, backing
            assert (pass_damage, improved) == (
                expected_pass_damage, expected_improved,
            ), backing

    @settings(max_examples=15, deadline=None)
    @given(placements, st.data())
    def test_refined_bound_sound_and_at_most_optimistic(self, placement, data):
        s = data.draw(st.integers(1, placement.r))
        n = placement.n
        start = data.draw(st.integers(0, n))
        slots = data.draw(st.integers(1, 3))
        base_size = data.draw(st.integers(0, 2))
        base = data.draw(
            st.permutations(range(n)).map(lambda p: list(p)[:base_size])
        )
        best_completion = max(
            damage(placement, list(base) + list(extra), s)
            for count in range(min(slots, n - start) + 1)
            for extra in itertools.combinations(range(start, n), count)
        )
        incidence = Incidence(placement)
        for name in available_backends():
            kernel = make_kernel(placement, s, backend=name, incidence=incidence)
            hits = kernel.hits_for(base)
            refined = kernel.refined_bound(hits, start, slots)
            assert refined <= kernel.optimistic_bound(hits, start, slots), name
            assert refined >= best_completion, (name, refined, best_completion)

    def test_backing_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_GAIN_BACKING", "python")
        assert resolve_gain_backing() == "python"
        placement = random_placement(8, 3, 12, 0)
        assert make_kernel(placement, 2, backend="gain").backing == "python"
        monkeypatch.setenv("REPRO_GAIN_BACKING", "warp-drive")
        with pytest.raises(ValueError):
            resolve_gain_backing()

    def test_explicit_backing_argument_wins(self):
        placement = random_placement(8, 3, 12, 0)
        for backing in available_gain_backings():
            kernel = make_kernel(
                placement, 2, backend="gain", gain_backing=backing
            )
            assert kernel.name == "gain"
            assert kernel.backing == backing

    def test_auto_backing_is_dependency_free(self):
        # Whatever auto resolves to must be importable here and now.
        assert resolve_gain_backing() in GAIN_BACKINGS

    def test_unavailable_backing_rejected(self):
        if not native.available():  # pragma: no cover - compiler-less envs
            with pytest.raises(ValueError):
                resolve_gain_backing("native")
        if not numpy_available():  # pragma: no cover - no-numpy CI leg
            with pytest.raises(ValueError):
                resolve_gain_backing("numpy")


class TestSelection:
    def test_explicit_backend_names(self):
        placement = random_placement(8, 3, 12, 0)
        for name in available_backends():
            assert make_kernel(placement, 2, backend=name).name == name

    def test_unknown_backend_rejected(self):
        placement = random_placement(8, 3, 12, 0)
        with pytest.raises(ValueError):
            make_kernel(placement, 2, backend="cuda")
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert resolve_backend() == "python"
        monkeypatch.setenv("REPRO_KERNEL", "nonsense")
        with pytest.raises(ValueError):
            resolve_backend()

    def test_force_overrides_env_and_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "bitset")
        with force_backend("python"):
            assert resolve_backend("bitset") == "python"

    def test_force_rejects_unknown(self):
        with pytest.raises(ValueError):
            with force_backend("gpu"):
                pass  # pragma: no cover

    def test_auto_is_dependency_free(self):
        # Whatever auto resolves to must be constructible without numpy.
        placement = random_placement(6, 2, 6, 1)
        backend = resolve_backend("auto")
        assert backend in BACKENDS
        if not numpy_available():
            assert backend != "numpy"  # pragma: no cover
        assert make_kernel(placement, 1, backend=backend).damage_for([0]) >= 0

    def test_s_validated(self):
        placement = random_placement(8, 3, 12, 2)
        with pytest.raises(ValueError):
            make_kernel(placement, 0)
        with pytest.raises(ValueError):
            make_kernel(placement, placement.r + 1)

    def test_incidence_shared_across_thresholds(self):
        placement = random_placement(8, 3, 12, 3)
        incidence = Incidence(placement)
        k1 = make_kernel(placement, 1, backend="bitset", incidence=incidence)
        k2 = make_kernel(placement, 2, backend="bitset", incidence=incidence)
        assert k1.masks is k2.masks
        other = random_placement(8, 3, 12, 4)
        with pytest.raises(ValueError):
            make_kernel(other, 1, incidence=incidence)
