"""Tests for Random (Definition 4) and Random' placements."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.random_placement import RandomStrategy, UnconstrainedRandomStrategy
from repro.util.combinatorics import ceil_div


class TestRandomStrategy:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(5, 40),
        st.integers(2, 5),
        st.integers(1, 200),
        st.integers(0, 2**32 - 1),
    )
    def test_definition4_invariants(self, n, r, b, seed):
        if r > n:
            return
        placement = RandomStrategy(n, r).place(b, random.Random(seed))
        assert placement.b == b
        # Replica sets have r distinct nodes (enforced by Placement) and the
        # load quota ceil(r b / n) holds on every node.
        assert placement.r == r
        assert placement.max_load() <= ceil_div(r * b, n)

    def test_deterministic_under_seed(self):
        strategy = RandomStrategy(31, 5)
        a = strategy.place(100, random.Random(7))
        b = strategy.place(100, random.Random(7))
        assert a.replica_sets == b.replica_sets

    def test_different_seeds_differ(self):
        strategy = RandomStrategy(31, 5)
        a = strategy.place(100, random.Random(7))
        b = strategy.place(100, random.Random(8))
        assert a.replica_sets != b.replica_sets

    def test_explicit_load_limit_respected(self):
        placement = RandomStrategy(10, 2, load_limit=5).place(
            20, random.Random(1)
        )
        assert placement.max_load() <= 5

    def test_infeasible_limit_rejected(self):
        from repro.core.placement import PlacementError

        with pytest.raises(PlacementError):
            RandomStrategy(10, 2, load_limit=1).place(20, random.Random(1))

    def test_tight_quota_still_solvable(self):
        # r*b exactly n*limit: every slot used, repair must still converge.
        placement = RandomStrategy(6, 3).place(10, random.Random(3))
        assert placement.max_load() == 5

    def test_marginal_uniformity_sanity(self):
        # Each node's expected load is r*b/n; across many placements the
        # empirical mean should be close (loose 3-sigma-style check).
        strategy = RandomStrategy(9, 3)
        totals = [0] * 9
        reps = 60
        for i in range(reps):
            placement = strategy.place(30, random.Random(i))
            for node, load in enumerate(placement.loads()):
                totals[node] += load
        mean_loads = [t / reps for t in totals]
        for mean_load in mean_loads:
            assert 8.0 <= mean_load <= 12.0  # target 10

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomStrategy(3, 4)
        with pytest.raises(ValueError):
            RandomStrategy(10, 2).place(0)


class TestUnconstrainedRandom:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(5, 30), st.integers(1, 5), st.integers(1, 100), st.integers(0, 1000))
    def test_distinct_nodes_per_object(self, n, r, b, seed):
        if r > n:
            return
        placement = UnconstrainedRandomStrategy(n, r).place(b, random.Random(seed))
        assert placement.b == b
        assert placement.r == r

    def test_no_quota(self):
        # With many objects on few nodes some node exceeds the Random quota
        # eventually -- the defining difference from Definition 4.
        placement = UnconstrainedRandomStrategy(4, 1).place(
            400, random.Random(0)
        )
        assert placement.max_load() > ceil_div(400, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            UnconstrainedRandomStrategy(3, 4)
        with pytest.raises(ValueError):
            UnconstrainedRandomStrategy(5, 2).place(-1)
