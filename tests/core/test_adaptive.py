"""Tests for the adaptive Combo placement (churn extension)."""

import pytest

from repro.core.adaptive import AdaptiveComboPlacement
from repro.core.adversary import ExhaustiveAdversary
from repro.designs.blocks import BlockDesign


def make(n=13, r=3, s=2, k=3, **kwargs):
    return AdaptiveComboPlacement(n, r, s, k, **kwargs)


class TestChurn:
    def test_add_objects(self):
        adaptive = make()
        ids = [adaptive.add_object() for _ in range(20)]
        assert len(set(ids)) == 20
        assert adaptive.num_objects == 20
        placement = adaptive.placement()
        assert placement.b == 20
        assert placement.r == 3

    def test_remove_and_reuse(self):
        adaptive = make()
        ids = [adaptive.add_object() for _ in range(10)]
        victim = ids[4]
        victim_block = adaptive._assignments[victim][1]
        adaptive.remove_object(victim)
        assert adaptive.num_objects == 9
        # Freed block is reused before drawing new ones.
        newcomer = adaptive.add_object()
        assert adaptive._assignments[newcomer][1] == victim_block

    def test_remove_unknown_rejected(self):
        adaptive = make()
        adaptive.add_object()
        with pytest.raises(KeyError):
            adaptive.remove_object(999)

    def test_empty_snapshot_rejected(self):
        adaptive = make()
        with pytest.raises(RuntimeError):
            adaptive.placement()


class TestInvariants:
    def test_packing_multiplicity_bounded_by_paid_lambda(self):
        adaptive = make(replan_interval=8)
        for _ in range(60):
            adaptive.add_object()
        placement = adaptive.placement()
        lambdas = adaptive.current_lambdas()
        design = BlockDesign.from_blocks(
            13, [tuple(sorted(ns)) for ns in placement.replica_sets]
        )
        # Stratum 1 blocks all come from <= lambda_1 copies of an STS(13);
        # stratum 0 contributes disjoint partition groups; pair multiplicity
        # is therefore bounded by lambda_1 + lambda_0.
        assert design.max_coverage(2) <= lambdas[1] + max(lambdas[0], 1)

    def test_lower_bound_sound_under_churn(self):
        adaptive = make(replan_interval=16)
        live = [adaptive.add_object() for _ in range(40)]
        # Churn: remove every third, add some more.
        for obj_id in live[::3]:
            adaptive.remove_object(obj_id)
        for _ in range(10):
            adaptive.add_object()
        placement = adaptive.placement()
        bound = adaptive.lower_bound()
        attack = ExhaustiveAdversary().attack(placement, 3, 2)
        assert placement.b - attack.damage >= bound

    def test_lower_bound_zero_when_empty(self):
        adaptive = make()
        assert adaptive.lower_bound() == 0

    def test_lambda_growth_is_lazy(self):
        adaptive = make()
        # STS(13) has 26 blocks; fewer draws keep lambda at 1.
        for _ in range(20):
            adaptive.add_object()
        lambdas = adaptive.current_lambdas()
        assert all(lam <= 1 for lam in lambdas)
