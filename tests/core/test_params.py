"""Tests for SystemParams and threshold presets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import (
    SystemParams,
    majority_threshold,
    read_one_threshold,
    write_all_threshold,
)


class TestSystemParams:
    def test_paper_configurations_valid(self):
        for n in (31, 71, 257):
            for r in range(2, 6):
                for s in range(1, r + 1):
                    SystemParams(n=n, b=600, r=r, s=s, k=max(s, 2))

    def test_average_load(self):
        params = SystemParams(n=31, b=600, r=5, s=3, k=3)
        assert params.average_load == pytest.approx(5 * 600 / 31)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n=0, b=1, r=1, s=1, k=1),
            dict(n=10, b=0, r=2, s=1, k=2),
            dict(n=10, b=5, r=11, s=1, k=2),  # r > n
            dict(n=10, b=5, r=3, s=0, k=2),  # s < 1
            dict(n=10, b=5, r=3, s=4, k=4),  # s > r
            dict(n=10, b=5, r=3, s=2, k=1),  # k < s
            dict(n=10, b=5, r=3, s=2, k=10),  # k >= n
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SystemParams(**kwargs)

    def test_with_objects_and_failures(self):
        params = SystemParams(n=71, b=600, r=3, s=2, k=3)
        assert params.with_objects(1200).b == 1200
        assert params.with_failures(5).k == 5
        with pytest.raises(ValueError):
            params.with_failures(1)  # below s


class TestThresholds:
    @given(st.integers(1, 20))
    def test_majority(self, r):
        s = majority_threshold(r)
        # Object dies exactly when survivors < majority.
        survivors_at_death = r - s
        assert survivors_at_death < r // 2 + 1
        assert r - (s - 1) >= r // 2 + 1

    def test_examples(self):
        assert majority_threshold(3) == 2
        assert majority_threshold(4) == 2  # needs 3 of 4 alive; dies at 2 lost
        assert majority_threshold(5) == 3
        assert read_one_threshold(4) == 4
        assert write_all_threshold() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            majority_threshold(0)
        with pytest.raises(ValueError):
            read_one_threshold(-1)
