"""Tests for the availability evaluation harness."""

import random

from repro.core.availability import evaluate_availability, survivors_under
from repro.core.random_placement import RandomStrategy
from repro.core.simple import SimpleStrategy


class TestEvaluate:
    def test_report_fields(self):
        placement = RandomStrategy(12, 3).place(30, random.Random(0))
        report = evaluate_availability(placement, 3, 2, effort="exact")
        assert report.b == 30
        assert report.available + report.failed == 30
        assert report.available == 30 - report.attack.damage
        assert 0.0 <= report.fraction_available <= 1.0
        assert report.exact

    def test_heuristic_flagged(self):
        placement = RandomStrategy(40, 3).place(300, random.Random(0))
        report = evaluate_availability(placement, 4, 2, effort="fast")
        assert not report.exact

    def test_simple_beats_bound(self):
        strategy = SimpleStrategy(13, 3, 1)
        placement = strategy.place(26)
        report = evaluate_availability(placement, 3, 2, effort="exact")
        assert report.available >= strategy.lower_bound(26, 3, 2)


class TestSurvivors:
    def test_counts(self):
        placement = RandomStrategy(10, 3).place(20, random.Random(1))
        total = survivors_under(placement, (0, 1, 2), 2) + len(
            placement.failed_objects((0, 1, 2), 2)
        )
        assert total == 20
