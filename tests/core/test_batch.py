"""Tests for the batched attack engine."""

import random

import pytest

from repro.core.adversary import best_attack, damage
from repro.core.availability import evaluate_availability_grid
from repro.core.batch import (
    AttackCell,
    attack_cache_default,
    attack_cache_stats,
    attack_grid,
    batch_attack,
    clear_attack_caches,
    engine_cache_cap,
    engine_for,
    worker_count,
)
from repro.core.kernels import BACKENDS, numpy_available
from repro.core.placement import Placement
from repro.core.random_placement import RandomStrategy
from repro.core.simple import SimpleStrategy


def random_placement(n, r, b, seed):
    return RandomStrategy(n, r).place(b, random.Random(seed))


class TestBatchAttack:
    def test_results_align_with_cells(self):
        placement = random_placement(12, 3, 40, 0)
        cells = [
            AttackCell(3, 2, "exact"),
            AttackCell(2, 1, "exact"),
            AttackCell(2, 2, "exact"),
        ]
        results = batch_attack(placement, cells)
        assert len(results) == 3
        for cell, attack in zip(cells, results):
            assert len(attack.nodes) == cell.k
            assert damage(placement, attack.nodes, cell.s) == attack.damage
            assert attack.exact

    def test_matches_unbatched_exact_search(self):
        placement = random_placement(11, 3, 35, 1)
        cells = [AttackCell(k, s, "exact") for s in (1, 2) for k in (2, 3)]
        batched = batch_attack(placement, cells)
        for cell, attack in zip(cells, batched):
            solo = best_attack(placement, cell.k, cell.s, effort="exact")
            assert attack.damage == solo.damage

    def test_incumbent_chaining_is_monotone(self):
        # More failures never kill fewer objects within one threshold group.
        placement = random_placement(20, 3, 120, 2)
        cells = [AttackCell(k, 2, "fast") for k in range(2, 7)]
        results = batch_attack(placement, cells)
        damages = [attack.damage for attack in results]
        assert damages == sorted(damages)

    def test_deterministic_replay(self):
        placement = random_placement(16, 3, 60, 3)
        cells = [AttackCell(k, s, "fast") for s in (1, 2) for k in (2, 3, 4)]
        first = batch_attack(placement, cells, seed=7)
        second = batch_attack(placement, cells, seed=7)
        assert first == second

    def test_empty_grid(self):
        placement = random_placement(8, 3, 10, 4)
        assert batch_attack(placement, []) == []

    def test_cell_validation(self):
        placement = random_placement(8, 3, 10, 5)
        with pytest.raises(ValueError):
            batch_attack(placement, [AttackCell(0, 2)])
        with pytest.raises(ValueError):
            batch_attack(placement, [AttackCell(2, 9)])
        with pytest.raises(ValueError):
            batch_attack(placement, [AttackCell(2, 2, "extreme")])

    def test_multiprocess_matches_serial(self):
        placement = random_placement(12, 3, 40, 6)
        cells = [AttackCell(k, s, "fast") for s in (1, 2, 3) for k in (2, 3)]
        serial = batch_attack(placement, cells, workers=1, seed=11)
        fanned = batch_attack(placement, cells, workers=2, seed=11)
        assert serial == fanned

    def test_single_threshold_grid_fans_out(self):
        # One s but many k: spare workers chunk the k-ladder; with exact
        # effort the results are identical to serial regardless.
        placement = random_placement(11, 3, 35, 9)
        cells = [AttackCell(k, 2, "exact") for k in (2, 3, 4, 5)]
        serial = batch_attack(placement, cells, workers=1, seed=5)
        fanned = batch_attack(placement, cells, workers=2, seed=5)
        assert [a.damage for a in serial] == [a.damage for a in fanned]
        assert all(a.exact for a in fanned)

    def test_backend_choice_does_not_change_results(self):
        placement = random_placement(12, 3, 40, 7)
        cells = [AttackCell(k, 2, "fast") for k in (2, 3, 4)]
        backends = [b for b in BACKENDS if b != "numpy" or numpy_available()]
        per_backend = [
            batch_attack(placement, cells, backend=name, seed=3)
            for name in backends
        ]
        assert all(result == per_backend[0] for result in per_backend[1:])


class TestAttackGrid:
    def test_full_cartesian(self):
        placement = SimpleStrategy(13, 3, 1).place(26)
        grid = attack_grid(placement, k_values=(2, 3), s_values=(2, 3),
                           effort="exact")
        assert set(grid) == {(2, 2), (3, 2), (2, 3), (3, 3)}
        # Damage grows with k and shrinks with s.
        assert grid[(3, 2)].damage >= grid[(2, 2)].damage
        assert grid[(2, 3)].damage <= grid[(2, 2)].damage


class TestAvailabilityGrid:
    def test_reports_align(self):
        placement = random_placement(12, 3, 40, 8)
        cells = [AttackCell(3, 2, "exact"), AttackCell(2, 2, "exact")]
        reports = evaluate_availability_grid(placement, cells)
        assert [(r.k, r.s) for r in reports] == [(3, 2), (2, 2)]
        for report in reports:
            assert report.available + report.attack.damage == placement.b
            assert report.exact


class TestWarmEngine:
    """The persistent attack pipeline: engines cached per placement
    structure, attack results memoized per (cell, seed, warm chain)."""

    def setup_method(self):
        clear_attack_caches()

    def test_engine_shared_across_calls(self):
        placement = random_placement(12, 3, 40, 20)
        engine = engine_for(placement)
        assert engine_for(placement) is engine
        assert engine.kernel(2) is engine.kernel(2)

    def test_structurally_equal_placements_share_engine(self):
        placement = random_placement(12, 3, 40, 21)
        clone = Placement.from_dict(placement.to_dict())
        assert clone is not placement
        assert engine_for(clone) is engine_for(placement)

    def test_different_backends_get_different_engines(self):
        placement = random_placement(12, 3, 40, 22)
        assert engine_for(placement, "python") is not engine_for(placement, "bitset")

    def test_gain_backing_pin_is_honoured_after_warmup(self, monkeypatch):
        # Re-pinning REPRO_GAIN_BACKING mid-process must not silently
        # reuse an engine (and kernels) built under the previous backing.
        placement = random_placement(12, 3, 40, 30)
        monkeypatch.setenv("REPRO_GAIN_BACKING", "bitset")
        warm = engine_for(placement, "gain")
        assert warm.kernel(2).backing == "bitset"
        monkeypatch.setenv("REPRO_GAIN_BACKING", "python")
        pinned = engine_for(placement, "gain")
        assert pinned is not warm
        assert pinned.kernel(2).backing == "python"

    def test_repeat_grid_served_from_memo(self):
        placement = random_placement(14, 3, 50, 23)
        cells = [AttackCell(k, 2, "fast") for k in (2, 3, 4)]
        first = batch_attack(placement, cells, seed=9)
        before = attack_cache_stats()
        second = batch_attack(placement, cells, seed=9)
        after = attack_cache_stats()
        assert second == first
        assert after["hits"] - before["hits"] == len(cells)
        assert after["misses"] == before["misses"]

    def test_memo_keyed_on_seed_and_cell(self):
        placement = random_placement(14, 3, 50, 24)
        cells = [AttackCell(3, 2, "fast")]
        batch_attack(placement, cells, seed=1)
        before = attack_cache_stats()
        batch_attack(placement, cells, seed=2)  # different derived rng
        batch_attack(placement, [AttackCell(3, 2, "exact")], seed=1)
        assert attack_cache_stats()["hits"] == before["hits"]

    def test_cache_argument_disables_memo(self):
        placement = random_placement(14, 3, 50, 25)
        cells = [AttackCell(3, 2, "fast")]
        baseline = batch_attack(placement, cells, seed=4)
        before = attack_cache_stats()
        repeat = batch_attack(placement, cells, seed=4, cache=False)
        after = attack_cache_stats()
        assert repeat == baseline  # same derived rng, just recomputed
        assert after == before

    def test_cache_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_ATTACK_CACHE", "0")
        assert not attack_cache_default()
        placement = random_placement(14, 3, 50, 26)
        cells = [AttackCell(3, 2, "fast")]
        batch_attack(placement, cells, seed=5)
        before = attack_cache_stats()
        batch_attack(placement, cells, seed=5)
        assert attack_cache_stats() == before
        monkeypatch.setenv("REPRO_ATTACK_CACHE", "sometimes")
        with pytest.raises(ValueError):
            attack_cache_default()

    def test_caller_rng_bypasses_memo(self):
        placement = random_placement(14, 3, 50, 27)
        cells = [AttackCell(3, 2, "fast")]
        first = batch_attack(placement, cells, rng=random.Random(0))
        before = attack_cache_stats()
        second = batch_attack(placement, cells, rng=random.Random(0))
        after = attack_cache_stats()
        assert second == first  # identical generator state, recomputed
        assert after["hits"] == before["hits"]

    def test_multiprocess_results_adopted_into_parent_memo(self):
        # Worker-computed attacks land in the parent's memo, so repeating
        # a fanned-out grid is served locally without re-spawning a pool.
        placement = random_placement(14, 3, 50, 29)
        cells = [AttackCell(k, s, "fast") for s in (1, 2) for k in (2, 3)]
        first = batch_attack(placement, cells, workers=2, seed=8)
        before = attack_cache_stats()
        second = batch_attack(placement, cells, workers=2, seed=8)
        assert second == first
        assert attack_cache_stats()["hits"] - before["hits"] == len(cells)

    def test_memoized_results_match_fresh_engine(self):
        placement = random_placement(14, 3, 50, 28)
        cells = [AttackCell(k, s, "fast") for s in (1, 2) for k in (2, 3)]
        warm = batch_attack(placement, cells, seed=6)
        warm_again = batch_attack(placement, cells, seed=6)
        clear_attack_caches()
        cold = batch_attack(placement, cells, seed=6)
        assert warm == warm_again == cold


class TestEngineCacheCap:
    def setup_method(self):
        clear_attack_caches()

    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_CACHE", raising=False)
        assert engine_cache_cap() == 8
        monkeypatch.setenv("REPRO_ENGINE_CACHE", "3")
        assert engine_cache_cap() == 3
        monkeypatch.setenv("REPRO_ENGINE_CACHE", "0")
        with pytest.raises(ValueError, match="REPRO_ENGINE_CACHE"):
            engine_cache_cap()
        monkeypatch.setenv("REPRO_ENGINE_CACHE", "many")
        with pytest.raises(ValueError, match="REPRO_ENGINE_CACHE"):
            engine_cache_cap()

    def test_lru_eviction_detaches_the_oldest_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CACHE", "2")
        oldest = engine_for(random_placement(10, 3, 20, 40))
        engine_for(random_placement(10, 3, 22, 41))
        assert attack_cache_stats()["engines"] == 2
        engine_for(random_placement(10, 3, 24, 42))  # evicts `oldest`
        assert attack_cache_stats()["engines"] == 2
        # A detached engine is gone for good: the same structure now
        # cold-builds a fresh engine instead of resurrecting the old one.
        assert engine_for(oldest.placement) is not oldest

    def test_cache_hit_refreshes_recency(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CACHE", "2")
        keep = random_placement(10, 3, 20, 43)
        warm = engine_for(keep)
        engine_for(random_placement(10, 3, 22, 44))
        engine_for(keep)  # refresh: `keep` is now most-recent
        engine_for(random_placement(10, 3, 24, 45))  # evicts the middle one
        assert engine_for(keep) is warm


class TestWorkerKnob:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert worker_count() == 1
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert worker_count() == 4
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            worker_count()
