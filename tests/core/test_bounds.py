"""Tests for Lemma 1/2/3 bounds and Theorem 1 constants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import (
    lb_avail_combo,
    lb_avail_simple,
    minimal_lambda,
    simple_capacity,
    theorem1_constants,
)
from repro.util.combinatorics import binom


class TestLemma1Capacity:
    def test_paper_values(self):
        # STS(69) packing capacity inside the Fig 2 experiment.
        assert simple_capacity(69, 3, 1, 1) == 782
        assert simple_capacity(69, 3, 1, 2) == 1564
        # Trivial stratum x + 1 = r.
        assert simple_capacity(71, 3, 2, 1) == binom(71, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            simple_capacity(10, 3, 3, 1)  # x >= r
        with pytest.raises(ValueError):
            simple_capacity(10, 3, 1, 0)


class TestEqn1MinimalLambda:
    def test_exact_boundaries(self):
        # unit = C(69,2)/C(3,2) = 782 objects per lambda step.
        assert minimal_lambda(782, 69, 3, 1) == 1
        assert minimal_lambda(783, 69, 3, 1) == 2
        assert minimal_lambda(1564, 69, 3, 1) == 2
        assert minimal_lambda(1565, 69, 3, 1) == 3

    def test_eqn1_bracketing(self):
        # (lambda - mu) * unit < b <= lambda * unit
        for b in (1, 500, 782, 783, 9600):
            lam = minimal_lambda(b, 69, 3, 1)
            unit = 782
            assert (lam - 1) * unit < b <= lam * unit

    def test_mu_multiples(self):
        # With mu = 2, lambda moves in steps of 2.
        assert minimal_lambda(1, 9, 3, 1, mu=2) == 2

    def test_non_integral_unit_rejected(self):
        with pytest.raises(ValueError):
            minimal_lambda(10, 8, 3, 1)  # C(8,2)/C(3,2) not integral

    def test_b_validated(self):
        with pytest.raises(ValueError):
            minimal_lambda(0, 69, 3, 1)


class TestLemma2:
    def test_paper_formula(self):
        # lbAvail = b - floor(lam C(k,x+1)/C(s,x+1))
        assert lb_avail_simple(1200, 3, 2, 1, 2) == 1200 - (2 * 3) // 1
        assert lb_avail_simple(600, 5, 3, 2, 1) == 600 - binom(5, 3) // 1

    def test_can_go_negative(self):
        assert lb_avail_simple(10, 6, 2, 1, 100) < 0

    def test_x_must_be_below_s(self):
        with pytest.raises(ValueError):
            lb_avail_simple(100, 3, 2, 2, 1)

    def test_lambda_validated(self):
        with pytest.raises(ValueError):
            lb_avail_simple(100, 3, 2, 1, 0)

    @given(
        st.integers(1, 10_000),
        st.integers(2, 8),
        st.integers(1, 5),
        st.data(),
    )
    def test_monotone_in_lambda(self, b, k, s, data):
        s = min(s, k)
        x = data.draw(st.integers(0, s - 1))
        lam = data.draw(st.integers(1, 50))
        assert lb_avail_simple(b, k, s, x, lam) >= lb_avail_simple(
            b, k, s, x, lam + 1
        )


class TestLemma3:
    def test_sums_stratum_losses(self):
        b, k, s = 1200, 4, 3
        lambdas = (6, 2, 1)
        expected = b - sum(
            (lam * binom(k, x + 1)) // binom(s, x + 1)
            for x, lam in enumerate(lambdas)
        )
        assert lb_avail_combo(b, k, s, lambdas) == expected

    def test_zero_strata_skipped(self):
        assert lb_avail_combo(100, 3, 2, (0, 5)) == 100 - (5 * 3) // 1

    def test_stratum_range_validated(self):
        with pytest.raises(ValueError):
            lb_avail_combo(100, 3, 2, (1, 1, 1))  # x = 2 >= s = 2

    def test_single_stratum_reduces_to_lemma2(self):
        b, k, s, x, lam = 900, 5, 3, 1, 4
        lambdas = [0] * s
        lambdas[x] = lam
        assert lb_avail_combo(b, k, s, lambdas) == lb_avail_simple(b, k, s, x, lam)


class TestTheorem1:
    def test_paper_illustration_s_equals_r(self):
        # With s = r the binomials cancel; c approx (1 - (k/n)^(x+1))^-1.
        constants = theorem1_constants(nx=100, r=3, s=3, k=10, x=1)
        assert constants.applicable
        ratio = (
            binom(3, 2) * binom(10, 2) / (binom(100, 2) * binom(3, 2))
        )
        assert constants.competitive_ratio == pytest.approx(1 / (1 - ratio))

    def test_inapplicable_when_ratio_too_big(self):
        constants = theorem1_constants(nx=6, r=5, s=2, k=5, x=1)
        assert not constants.applicable

    def test_alpha_formula(self):
        constants = theorem1_constants(nx=69, r=3, s=2, k=3, x=1, mu=1)
        # alpha = c * mu * C(k,2)/C(s,2) = c * 3
        assert float(constants.alpha) == pytest.approx(
            constants.competitive_ratio * 3.0
        )

    def test_inequality_on_small_instance(self):
        # Avail(pi') < c Avail(pi) + alpha for an enumerable instance:
        # any placement pi' vs a Simple(1, 1) placement pi from STS(9).
        from itertools import combinations
        from repro.core.adversary import ExhaustiveAdversary
        from repro.core.placement import Placement
        from repro.core.simple import SimpleStrategy

        n, r, s, k, b = 9, 3, 2, 2, 10
        strategy = SimpleStrategy(n, r, 1)
        pi = strategy.place(b)
        adversary = ExhaustiveAdversary()
        avail_pi = b - adversary.attack(pi, k, s).damage
        constants = theorem1_constants(nx=9, r=r, s=s, k=k, x=1)
        assert constants.applicable
        c = constants.competitive_ratio
        alpha = float(constants.alpha)
        # A strong competitor: another Simple-style placement shifted.
        competitor_sets = [tuple((p + 1) % n for p in blk) for blk in pi.replica_sets]
        pi_prime = Placement.from_replica_sets(n, competitor_sets)
        avail_prime = b - adversary.attack(pi_prime, k, s).damage
        assert avail_prime < c * avail_pi + alpha
