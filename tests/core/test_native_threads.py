"""Bit-identity tests for the threaded native gain kernel.

The native kernel's multithreaded paths (bulk rebuild, add/remove
sweeps, best-addition argmax, the polish pass) partition work by index
range and merge per-lane partials in ascending lane order, so the final
state and every tie-break must be *bit-for-bit* identical to the serial
code at any thread count. These tests pin that contract:

* full :class:`~repro.core.adversary.AttackResult` equality (nodes,
  damage, exactness *and* evaluation counts) across
  ``REPRO_NATIVE_THREADS`` in {1, 2, 4} for every available gain
  backing — the non-native backings ignore the knob, which is itself
  part of the contract (the knob must never change results anywhere);
* a deterministic large instance (b = 20 000, heavy node segments) that
  genuinely crosses the kernel's parallelism thresholds, comparing the
  packed gain-state buffer byte-for-byte;
* interleaved :meth:`AttackEngine.apply_delta` churn, where threaded
  delta-updated engines must match a cold serial engine;
* the thread-budget knobs themselves (env parsing, configure/restore,
  per-worker budget split) and ``compile_info()``/``REPRO_CC``.
"""

import random
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import native
from repro.core.adversary import best_attack
from repro.core.batch import AttackCell, AttackEngine
from repro.core.kernels import GAIN_BACKINGS, make_kernel, numpy_available
from repro.core.random_placement import RandomStrategy

THREAD_COUNTS = (1, 2, 4)


def available_gain_backings():
    return [
        backing
        for backing in GAIN_BACKINGS
        if (backing != "numpy" or numpy_available())
        and (backing != "native" or native.available())
    ]


def random_placement(n, r, b, seed):
    return RandomStrategy(n, r).place(b, random.Random(seed))


@contextmanager
def kernel_threads(count):
    previous = native.configured_threads()
    native.configure_threads(count)
    try:
        yield
    finally:
        native.configure_threads(previous)


placements = st.builds(
    random_placement,
    n=st.integers(5, 14),
    r=st.integers(2, 4),
    b=st.integers(1, 40),
    seed=st.integers(0, 10_000),
).filter(lambda p: p.r <= p.n)


class TestThreadCountInvariance:
    @settings(max_examples=15, deadline=None)
    @given(placements, st.data())
    def test_attack_results_identical_across_thread_counts(
        self, placement, data
    ):
        s = data.draw(st.integers(1, placement.r))
        k = data.draw(st.integers(1, placement.n - 1))
        for backing in available_gain_backings():
            results = []
            for threads in THREAD_COUNTS:
                with kernel_threads(threads):
                    kernel = make_kernel(
                        placement, s, backend="gain", gain_backing=backing
                    )
                    results.append(
                        best_attack(
                            placement,
                            k,
                            s,
                            effort="auto",
                            rng=random.Random(1234),
                            kernel=kernel,
                        )
                    )
            # Full dataclass equality: nodes, damage, exact AND the
            # evaluation count — the search trajectory itself must not
            # depend on the thread count.
            assert results[1] == results[0], (backing, results)
            assert results[2] == results[0], (backing, results)

    @settings(max_examples=10, deadline=None)
    @given(placements, st.data())
    def test_incremental_state_identical_across_thread_counts(
        self, placement, data
    ):
        if "native" not in available_gain_backings():
            pytest.skip("native kernel unavailable")
        s = data.draw(st.integers(1, placement.r))
        moves = data.draw(
            st.lists(st.integers(0, placement.n - 1), min_size=1, max_size=8)
        )
        snapshots = []
        for threads in THREAD_COUNTS:
            with kernel_threads(threads):
                kernel = make_kernel(
                    placement, s, backend="gain", gain_backing="native"
                )
                hits = kernel.empty_hits()
                active = []
                trace = []
                for node in moves:
                    if node in active:
                        hits = kernel.remove_node(hits, node)
                        active.remove(node)
                    else:
                        hits = kernel.add_node(hits, node)
                        active.append(node)
                    trace.append(hits.state.tobytes())
                snapshots.append(trace)
        assert snapshots[1] == snapshots[0]
        assert snapshots[2] == snapshots[0]


@pytest.mark.skipif(not native.available(), reason="native kernel unavailable")
class TestThreadedLargeInstance:
    """b = 20 000 with n = 6 heavy nodes: every segment crosses the
    GK_MT_* thresholds, so lanes > 1 genuinely take the parallel paths.
    """

    def _placement(self):
        return random_placement(6, 3, 20_000, 9)

    def test_bulk_rebuild_state_bit_identical(self):
        placement = self._placement()
        reference = None
        for threads in THREAD_COUNTS:
            with kernel_threads(threads):
                kernel = make_kernel(
                    placement, 2, backend="gain", gain_backing="native"
                )
                state = kernel.hits_for([0, 2, 4]).state.tobytes()
            if reference is None:
                reference = state
            else:
                assert state == reference, f"threads={threads}"

    def test_polish_and_argmax_bit_identical(self):
        placement = self._placement()
        reference = None
        for threads in THREAD_COUNTS:
            with kernel_threads(threads):
                kernel = make_kernel(
                    placement, 2, backend="gain", gain_backing="native"
                )
                hits = kernel.hits_for([1, 3])
                best = kernel.best_addition(hits, banned=[1, 3])
                nodes = [1, 3]
                current = kernel.damage_of(hits)
                hits, polished, improved = kernel.polish_pass(
                    hits, nodes, current
                )
                outcome = (
                    best,
                    tuple(nodes),
                    polished,
                    improved,
                    hits.state.tobytes(),
                )
            if reference is None:
                reference = outcome
            else:
                assert outcome == reference, f"threads={threads}"

    def test_attack_result_bit_identical(self):
        placement = self._placement()
        reference = None
        for threads in THREAD_COUNTS:
            with kernel_threads(threads):
                kernel = make_kernel(
                    placement, 2, backend="gain", gain_backing="native"
                )
                result = best_attack(
                    placement,
                    3,
                    2,
                    effort="fast",
                    rng=random.Random(7),
                    kernel=kernel,
                )
            if reference is None:
                reference = result
            else:
                assert result == reference, f"threads={threads}"


class TestDeltaChurnInvariance:
    """Threaded engines under apply_delta churn match a serial engine."""

    def _churn(self, backing, threads):
        placement = random_placement(8, 2, 30, 5)
        with kernel_threads(threads):
            engine = AttackEngine(
                placement, backend="gain", gain_backing=backing
            )
            out = [engine.attack(AttackCell(2, 2), cache=False)]
            engine.apply_delta(
                added_objects=[(0, 1), (2, 3), (5, 7)], removed_objects=[0]
            )
            out.append(engine.attack(AttackCell(2, 2), cache=False))
            out.append(engine.attack(AttackCell(3, 1), cache=False))
            engine.apply_delta(removed_objects=[4, 1])
            out.append(engine.attack(AttackCell(2, 1), cache=False))
        return out

    def test_churned_results_identical_across_threads_and_backings(self):
        reference = None
        for backing in available_gain_backings():
            for threads in THREAD_COUNTS:
                out = self._churn(backing, threads)
                if reference is None:
                    reference = out
                else:
                    assert out == reference, (backing, threads)


class TestThreadKnobs:
    def test_env_override_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "3")
        with kernel_threads(None):
            assert native.thread_count() == 3

    def test_env_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "zero")
        with kernel_threads(None):
            with pytest.raises(ValueError, match="REPRO_NATIVE_THREADS"):
                native.thread_count()

    def test_configure_overrides_env_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "2")
        with kernel_threads(5):
            assert native.configured_threads() == 5
            assert native.thread_count() == 5
        with kernel_threads(None):
            assert native.configured_threads() is None
            assert native.thread_count() == 2

    def test_worker_thread_budget_splits_evenly(self):
        with kernel_threads(8):
            assert native.worker_thread_budget(2) == 4
            assert native.worker_thread_budget(3) == 2
            assert native.worker_thread_budget(16) == 1
            assert native.worker_thread_budget(0) == 8

    @pytest.mark.skipif(
        not native.available(), reason="native kernel unavailable"
    )
    def test_pool_matches_configuration(self):
        with kernel_threads(2):
            epoch_before = native.pool_epoch()
            handle = native.current_pool()
            assert handle is not None
            assert native.pool_threads() == 2
            # Same configuration: the pool handle is cached, no churn.
            assert native.current_pool() == handle
            assert native.pool_epoch() == native.pool_epoch()
        with kernel_threads(1):
            # A 1-thread budget needs no pool at all.
            assert native.current_pool() is None
            assert native.pool_epoch() != epoch_before


class TestCompileInfo:
    @pytest.mark.skipif(
        not native.available(), reason="native kernel unavailable"
    )
    def test_compile_info_records_toolchain(self):
        info = native.compile_info()
        assert info is not None
        assert info["compiler"]
        assert any(flag in info["flags"] for flag in ("-O3", "-O2"))
        assert "-pthread" in info["flags"]

    def test_repro_cc_failure_degrades_gracefully(
        self, monkeypatch, tmp_path
    ):
        saved = (
            native._lib,
            native._load_attempted,
            native._load_error,
            native._compile_info,
        )
        native._drop_pool(destroy=True)
        native._lib = None
        native._load_attempted = False
        native._load_error = None
        native._compile_info = None
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_CC", "/bin/false")
        try:
            assert not native.available()
            assert native.compile_info() is None
            assert native.load_error() is not None
            # Threaded entry points shrug it off too: no pool handle.
            assert native.current_pool() is None
        finally:
            native._drop_pool(destroy=True)
            (
                native._lib,
                native._load_attempted,
                native._load_error,
                native._compile_info,
            ) = saved
