"""Tests for affine/projective line designs, unitals and subline designs."""

import pytest

from repro.designs.affine import affine_geometry_design, affine_plane
from repro.designs.projective import (
    projective_geometry_design,
    projective_plane,
    projective_space_size,
)
from repro.designs.subline import inversive_plane, subline_design
from repro.designs.unital import hermitian_unital
from repro.util.combinatorics import binom


class TestAffine:
    @pytest.mark.parametrize("q", [2, 3, 4, 5])
    def test_affine_plane(self, q):
        design = affine_plane(q)
        assert design.v == q * q
        assert design.block_size == q
        assert design.num_blocks == q * (q + 1)
        assert design.is_design(2, 1)

    def test_ag_3_3(self):
        design = affine_geometry_design(3, 3)
        assert design.v == 27
        assert design.is_design(2, 1)
        assert design.num_blocks == binom(27, 2) // binom(3, 2)

    def test_ag_3_4_is_the_fig4_correction(self):
        # The corrected n1 = 64 cell for (n = 71, r = 4); see DESIGN.md.
        design = affine_geometry_design(3, 4)
        assert design.v == 64
        assert design.block_size == 4
        assert design.is_design(2, 1)

    def test_dimension_validated(self):
        with pytest.raises(ValueError):
            affine_geometry_design(1, 3)

    def test_point_loads_uniform(self):
        design = affine_plane(4)
        assert set(design.replication_counts()) == {5}  # q + 1 lines per point


class TestProjective:
    @pytest.mark.parametrize("q", [2, 3, 4, 5])
    def test_projective_plane(self, q):
        design = projective_plane(q)
        assert design.v == q * q + q + 1
        assert design.block_size == q + 1
        assert design.num_blocks == design.v  # planes are symmetric designs
        assert design.is_design(2, 1)

    def test_pg_4_2_is_sts_31(self):
        design = projective_geometry_design(4, 2)
        assert design.v == 31
        assert design.block_size == 3
        assert design.is_design(2, 1)

    def test_space_size(self):
        assert projective_space_size(2, 4) == 21
        assert projective_space_size(7, 2) == 255

    def test_dimension_validated(self):
        with pytest.raises(ValueError):
            projective_geometry_design(1, 2)


class TestUnital:
    def test_h3_is_2_28_4_1(self):
        design = hermitian_unital(3)
        assert design.v == 28
        assert design.block_size == 4
        assert design.num_blocks == 63
        assert design.is_design(2, 1)

    @pytest.mark.slow
    def test_h4_is_2_65_5_1(self):
        design = hermitian_unital(4)
        assert design.v == 65
        assert design.block_size == 5
        assert design.num_blocks == 208
        assert design.is_design(2, 1)


class TestSubline:
    def test_inversive_plane_order_3(self):
        design = inversive_plane(3)
        assert design.v == 10
        assert design.block_size == 4
        assert design.is_design(3, 1)

    def test_s_3_5_17(self):
        design = subline_design(4, 2)
        assert design.v == 17
        assert design.block_size == 5
        assert design.num_blocks == 68
        # verified 3-design inside the constructor; double-check here
        assert design.is_design(3, 1)

    @pytest.mark.slow
    def test_s_3_5_65(self):
        design = subline_design(4, 3)
        assert design.v == 65
        assert design.num_blocks == 4368
        assert design.is_design(3, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            subline_design(4, 1)
        with pytest.raises(ValueError):
            subline_design(6, 2)
