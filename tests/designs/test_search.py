"""Tests for DLX-based Steiner-system search."""

import pytest

from repro.designs.search import search_steiner_system


class TestSearch:
    def test_fano(self):
        design = search_steiner_system(7, 3, 2)
        assert design is not None
        assert design.num_blocks == 7
        assert design.is_design(2, 1)

    def test_sqs_8(self):
        design = search_steiner_system(8, 4, 3)
        assert design is not None
        assert design.num_blocks == 14
        assert design.is_design(3, 1)

    def test_sts_9(self):
        design = search_steiner_system(9, 3, 2)
        assert design is not None
        assert design.is_design(2, 1)

    def test_divisibility_shortcut(self):
        assert search_steiner_system(8, 3, 2) is None  # 8 != 1,3 mod 6

    def test_no_symmetry_breaking_still_works(self):
        design = search_steiner_system(7, 3, 2, fix_first_block=False)
        assert design is not None
        assert design.is_design(2, 1)

    def test_first_block_is_canonical(self):
        design = search_steiner_system(9, 3, 2)
        assert (0, 1, 2) in design.blocks

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            search_steiner_system(5, 6, 2)

    @pytest.mark.slow
    def test_sqs_10(self):
        design = search_steiner_system(10, 4, 3)
        assert design is not None
        assert design.num_blocks == 30
        assert design.is_design(3, 1)

    def test_trivial_t_equals_r(self):
        design = search_steiner_system(5, 2, 2)
        assert design is not None
        assert design.num_blocks == 10  # all pairs
