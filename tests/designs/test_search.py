"""Tests for DLX-based Steiner-system search."""

import pytest

from repro.designs.search import search_steiner_system


class TestSearch:
    def test_fano(self):
        design = search_steiner_system(7, 3, 2)
        assert design is not None
        assert design.num_blocks == 7
        assert design.is_design(2, 1)

    def test_sqs_8(self):
        design = search_steiner_system(8, 4, 3)
        assert design is not None
        assert design.num_blocks == 14
        assert design.is_design(3, 1)

    def test_sts_9(self):
        design = search_steiner_system(9, 3, 2)
        assert design is not None
        assert design.is_design(2, 1)

    def test_divisibility_shortcut(self):
        assert search_steiner_system(8, 3, 2) is None  # 8 != 1,3 mod 6

    def test_no_symmetry_breaking_still_works(self):
        design = search_steiner_system(7, 3, 2, fix_first_block=False)
        assert design is not None
        assert design.is_design(2, 1)

    def test_first_block_is_canonical(self):
        design = search_steiner_system(9, 3, 2)
        assert (0, 1, 2) in design.blocks

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            search_steiner_system(5, 6, 2)

    @pytest.mark.slow
    def test_sqs_10(self):
        design = search_steiner_system(10, 4, 3)
        assert design is not None
        assert design.num_blocks == 30
        assert design.is_design(3, 1)

    def test_trivial_t_equals_r(self):
        design = search_steiner_system(5, 2, 2)
        assert design is not None
        assert design.num_blocks == 10  # all pairs


class TestBudgetExhaustion:
    """The node budget must surface as an exception, never as None.

    ``None`` means "provably no such design exists"; a budget stop is a
    different fact ("gave up undecided") and conflating the two would let
    the catalog record false non-existence.
    """

    def test_budget_exhaustion_raises_not_none(self):
        from repro.designs.exact_cover import SearchBudgetExceeded

        with pytest.raises(SearchBudgetExceeded):
            search_steiner_system(13, 3, 2, max_nodes=1)

    def test_zero_budget_raises_immediately(self):
        from repro.designs.exact_cover import SearchBudgetExceeded

        with pytest.raises(SearchBudgetExceeded):
            search_steiner_system(7, 3, 2, max_nodes=0)

    def test_budget_large_enough_still_solves(self):
        design = search_steiner_system(7, 3, 2, max_nodes=10_000)
        assert design is not None
        assert design.is_design(2, 1)

    def test_divisibility_failure_beats_budget(self):
        # The arithmetic shortcut decides 8 != 1,3 (mod 6) without ever
        # expanding a node, so even a zero budget returns a clean None.
        assert search_steiner_system(8, 3, 2, max_nodes=0) is None


class TestSporadicOracleCrossCheck:
    """S(2,3,13): DLX as an independent oracle against the algebraic catalog."""

    def test_sts_13_against_catalog_construction(self):
        from repro.designs.blocks import design_block_count
        from repro.designs.catalog import build

        found = search_steiner_system(13, 3, 2)
        assert found is not None
        assert found.is_design(2, 1)
        algebraic = build(13, 3, 2)
        assert algebraic.is_design(2, 1)
        # Both realizations must agree on every counting invariant.
        expected_blocks = design_block_count(13, 3, 2, 1)  # = 26
        assert found.num_blocks == expected_blocks
        assert algebraic.num_blocks == expected_blocks
        assert found.replication_counts() == algebraic.replication_counts()
        assert found.max_coverage(2) == algebraic.max_coverage(2) == 1
