"""Tests for the DLX exact-cover solver."""

import pytest

from repro.designs.exact_cover import ExactCover, SearchBudgetExceeded


class TestBasics:
    def test_knuth_example(self):
        # The classic 7-column example from Knuth's DLX paper.
        problem = ExactCover(7)
        rows = [
            [2, 4, 5],
            [0, 3, 6],
            [1, 2, 5],
            [0, 3],
            [1, 6],
            [3, 4, 6],
        ]
        ids = [problem.add_row(r) for r in rows]
        solution = problem.solve()
        assert solution is not None
        covered = sorted(c for rid in solution for c in rows[ids.index(rid)])
        assert covered == list(range(7))

    def test_infeasible(self):
        problem = ExactCover(3)
        problem.add_row([0, 1])
        problem.add_row([1, 2])
        assert problem.solve() is None

    def test_all_solutions(self):
        problem = ExactCover(2)
        problem.add_row([0])
        problem.add_row([1])
        problem.add_row([0, 1])
        solutions = {frozenset(sol) for sol in problem.solutions()}
        assert solutions == {frozenset({0, 1}), frozenset({2})}

    def test_empty_row_rejected(self):
        problem = ExactCover(3)
        with pytest.raises(ValueError):
            problem.add_row([])

    def test_bad_column_rejected(self):
        problem = ExactCover(3)
        with pytest.raises(ValueError):
            problem.add_row([3])

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            ExactCover(0)


class TestSelectRow:
    def test_preselection_appears_in_solution(self):
        problem = ExactCover(4)
        r0 = problem.add_row([0, 1])
        problem.add_row([2, 3])
        problem.add_row([0, 2])
        problem.add_row([1, 3])
        problem.select_row(r0)
        solution = problem.solve()
        assert solution is not None
        assert r0 in solution

    def test_preselection_can_make_infeasible(self):
        problem = ExactCover(3)
        r0 = problem.add_row([0, 1])
        problem.add_row([0, 2])  # the only row covering 2 clashes with r0
        problem.select_row(r0)
        assert problem.solve() is None

    def test_unknown_row_rejected(self):
        problem = ExactCover(2)
        problem.add_row([0])
        with pytest.raises(ValueError):
            problem.select_row(5)


class TestBudget:
    def test_budget_exhaustion_raises(self):
        # A pathologically branchy instance with a tiny budget.
        problem = ExactCover(8)
        for i in range(8):
            for j in range(i + 1, 8):
                problem.add_row([i, j])
        with pytest.raises(SearchBudgetExceeded):
            problem.solve(max_nodes=1)

    def test_budget_sufficient_finds_solution(self):
        problem = ExactCover(4)
        for i in range(4):
            problem.add_row([i])
        assert problem.solve(max_nodes=100) is not None


class TestLatinSquareShape:
    def test_latin_square_completion_count(self):
        # Exact covers of a 2x2 latin square: rows are (cell, symbol) choices
        # encoded over columns (cell columns + row/col-symbol constraints).
        # There are exactly 2 latin squares of order 2.
        n = 2
        cells = {(r, c): i for i, (r, c) in enumerate(
            (r, c) for r in range(n) for c in range(n)
        )}
        row_sym = {(r, v): n * n + i for i, (r, v) in enumerate(
            (r, v) for r in range(n) for v in range(n)
        )}
        col_sym = {(c, v): 2 * n * n + i for i, (c, v) in enumerate(
            (c, v) for c in range(n) for v in range(n)
        )}
        problem = ExactCover(3 * n * n)
        for r in range(n):
            for c in range(n):
                for v in range(n):
                    problem.add_row(
                        [cells[(r, c)], row_sym[(r, v)], col_sym[(c, v)]]
                    )
        assert sum(1 for _ in problem.solutions()) == 2
