"""Tests for BlockDesign containers and design/packing verification."""

import pytest
from hypothesis import given
from hypothesis import strategies as st
from itertools import combinations

from repro.designs.blocks import (
    BlockDesign,
    DesignError,
    design_block_count,
    divisibility_conditions_hold,
    packing_capacity,
)

FANO = [
    (0, 1, 2), (0, 3, 4), (0, 5, 6),
    (1, 3, 5), (1, 4, 6), (2, 3, 6), (2, 4, 5),
]


class TestConstruction:
    def test_fano_is_design(self):
        design = BlockDesign.from_blocks(7, FANO)
        assert design.is_design(2, 1)
        assert design.is_packing(2, 1)
        assert design.num_blocks == 7
        assert design.block_size == 3

    def test_rejects_duplicate_points_in_block(self):
        with pytest.raises(DesignError):
            BlockDesign.from_blocks(5, [(0, 0, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(DesignError):
            BlockDesign.from_blocks(3, [(0, 1, 3)])

    def test_rejects_mixed_sizes(self):
        with pytest.raises(DesignError):
            BlockDesign.from_blocks(5, [(0, 1, 2), (3, 4)])

    def test_rejects_empty(self):
        with pytest.raises(DesignError):
            BlockDesign.from_blocks(5, [])

    def test_blocks_are_sorted_tuples(self):
        design = BlockDesign.from_blocks(5, [(2, 0, 4)])
        assert design.blocks == ((0, 2, 4),)


class TestCoverage:
    def test_coverage_counts_fano(self):
        design = BlockDesign.from_blocks(7, FANO)
        counts = design.coverage_counts(2)
        assert len(counts) == 21
        assert set(counts.values()) == {1}

    def test_multiset_blocks_raise_coverage(self):
        design = BlockDesign.from_blocks(7, FANO + FANO)
        assert design.max_coverage(2) == 2
        assert design.is_design(2, 2)
        assert not design.is_packing(2, 1)
        assert design.is_packing(2, 2)

    def test_coverage_brute_force_agreement(self):
        design = BlockDesign.from_blocks(7, FANO)
        counts = design.coverage_counts(2)
        for pair in combinations(range(7), 2):
            expected = sum(1 for blk in FANO if set(pair) <= set(blk))
            assert counts.get(pair, 0) == expected

    def test_invalid_t(self):
        design = BlockDesign.from_blocks(7, FANO)
        with pytest.raises(ValueError):
            design.coverage_counts(0)
        with pytest.raises(ValueError):
            design.coverage_counts(4)

    def test_incomplete_design_detected(self):
        # Drop one block: pairs in it are no longer covered.
        design = BlockDesign.from_blocks(7, FANO[:-1])
        assert not design.is_design(2, 1)
        assert design.is_packing(2, 1)


class TestOperations:
    def test_replication_counts(self):
        design = BlockDesign.from_blocks(7, FANO)
        assert design.replication_counts() == [3] * 7

    def test_relabel(self):
        design = BlockDesign.from_blocks(7, FANO)
        shifted = design.relabel([i + 1 for i in range(7)], 8)
        assert shifted.v == 8
        assert shifted.is_packing(2, 1)
        assert all(0 not in block for block in shifted.blocks)

    def test_relabel_rejects_non_injective(self):
        design = BlockDesign.from_blocks(7, FANO)
        with pytest.raises(DesignError):
            design.relabel([0] * 7, 7)

    def test_relabel_rejects_short_mapping(self):
        design = BlockDesign.from_blocks(7, FANO)
        with pytest.raises(DesignError):
            design.relabel([0, 1, 2], 7)

    def test_point_sets(self):
        design = BlockDesign.from_blocks(7, FANO)
        assert design.point_sets()[0] == frozenset({0, 1, 2})


class TestCapacityFormulas:
    def test_design_block_count(self):
        assert design_block_count(7, 3, 2, 1) == 7
        assert design_block_count(9, 3, 2, 1) == 12
        with pytest.raises(DesignError):
            design_block_count(8, 3, 2, 1)  # not integral

    def test_divisibility_conditions(self):
        assert divisibility_conditions_hold(7, 3, 2, 1)
        assert not divisibility_conditions_hold(8, 3, 2, 1)
        assert divisibility_conditions_hold(8, 4, 3, 1)  # SQS(8)
        assert not divisibility_conditions_hold(9, 4, 3, 1)

    def test_packing_capacity_lemma1(self):
        # Lemma 1 with the paper's Fig 2 parameters: lambda C(71,2)/C(3,2).
        assert packing_capacity(71, 3, 2, 1) == 71 * 70 // 2 // 3
        assert packing_capacity(71, 3, 2, 2) == 2 * (71 * 70 // 2) // 3

    def test_packing_capacity_validation(self):
        with pytest.raises(ValueError):
            packing_capacity(5, 6, 2, 1)
        with pytest.raises(ValueError):
            packing_capacity(5, 3, 2, 0)

    @given(
        st.integers(3, 40),
        st.integers(2, 5),
        st.integers(1, 4),
        st.integers(1, 6),
    )
    def test_capacity_monotone_in_lambda(self, v, r, t, lam):
        if not t <= r <= v:
            return
        assert packing_capacity(v, r, t, lam + 1) >= packing_capacity(v, r, t, lam)
