"""Tests for packing assembly: copies, chunking, trivial prefixes, greedy."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs.blocks import BlockDesign, DesignError, packing_capacity
from repro.designs.catalog import build
from repro.designs.packing import (
    chunked_packing_blocks,
    copies_needed,
    greedy_packing,
    packing_blocks_from_design,
    trivial_packing_blocks,
)
from repro.designs.steiner_triple import steiner_triple_system


def coverage_multiplicity(v, blocks, t):
    return BlockDesign.from_blocks(v, blocks).max_coverage(t)


class TestCopies:
    def test_prefix_of_copies(self):
        sts = steiner_triple_system(9)  # 12 blocks
        blocks = packing_blocks_from_design(sts, 30)
        assert len(blocks) == 30
        # 30 blocks = 2 full copies + 6: multiplicity exactly 3 on some pair.
        assert coverage_multiplicity(9, blocks, 2) == 3

    def test_exact_multiple_stays_tight(self):
        sts = steiner_triple_system(9)
        blocks = packing_blocks_from_design(sts, 24)
        assert coverage_multiplicity(9, blocks, 2) == 2

    def test_copies_needed(self):
        assert copies_needed(12, 24) == 2
        assert copies_needed(12, 25) == 3
        assert copies_needed(12, 1) == 1
        with pytest.raises(ValueError):
            copies_needed(0, 5)

    def test_zero_blocks(self):
        sts = steiner_triple_system(9)
        assert packing_blocks_from_design(sts, 0) == []
        with pytest.raises(ValueError):
            packing_blocks_from_design(sts, -1)


class TestChunking:
    def test_two_chunks_disjoint_points(self):
        a = steiner_triple_system(9)
        b = steiner_triple_system(7)
        blocks = chunked_packing_blocks([a, b], 19, 16)
        assert len(blocks) == 19
        chunk_a = [blk for blk in blocks if max(blk) < 9]
        chunk_b = [blk for blk in blocks if min(blk) >= 9]
        assert len(chunk_a) + len(chunk_b) == 19
        # Proportional split: chunk a has 12/19 of capacity.
        assert 10 <= len(chunk_a) <= 13

    def test_chunking_respects_packing(self):
        a = steiner_triple_system(9)
        b = steiner_triple_system(7)
        blocks = chunked_packing_blocks([a, b], 19, 16)
        assert coverage_multiplicity(16, blocks, 2) == 1

    def test_overflowing_points_rejected(self):
        a = steiner_triple_system(9)
        with pytest.raises(DesignError):
            chunked_packing_blocks([a, a], 5, 17)

    def test_empty_chunks_rejected(self):
        with pytest.raises(DesignError):
            chunked_packing_blocks([], 5, 10)

    def test_interleaving_balances_prefix(self):
        a = steiner_triple_system(9)
        b = steiner_triple_system(9)
        blocks = chunked_packing_blocks([a, b], 8, 18)
        first_four = blocks[:4]
        sides = {0 if max(blk) < 9 else 1 for blk in first_four}
        assert sides == {0, 1}  # both chunks represented early


class TestTrivialPacking:
    def test_prefix(self):
        blocks = trivial_packing_blocks(6, 3, 10)
        assert len(blocks) == 10
        assert len(set(blocks)) == 10

    def test_capacity_guard(self):
        with pytest.raises(DesignError):
            trivial_packing_blocks(5, 3, 11)


class TestGreedyPacking:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(8, 16),
        st.integers(2, 4),
        st.data(),
    )
    def test_result_is_valid_packing(self, v, t_candidate, data):
        r = data.draw(st.integers(max(2, t_candidate), min(5, v // 2)))
        t = min(t_candidate, r)
        lam = data.draw(st.integers(1, 2))
        cap = packing_capacity(v, r, t, lam)
        # Stay well below capacity: greedy choices dead-end near it.
        num = data.draw(st.integers(1, max(1, min(cap // 3, 30))))
        blocks = greedy_packing(v, r, t, lam, num, rng=random.Random(1))
        assert len(blocks) == num
        assert coverage_multiplicity(v, blocks, t) <= lam

    def test_capacity_exceeded_rejected(self):
        with pytest.raises(DesignError):
            greedy_packing(7, 3, 2, 1, 8)  # STS(7) capacity is 7

    def test_stall_detection(self):
        # Capacity bound admits 2 blocks, but after one specific block the
        # sampler can still finish; use a tiny reject budget to force stall
        # detection on an (almost) full instance.
        with pytest.raises(DesignError):
            greedy_packing(6, 3, 2, 1, 4, rng=random.Random(0), max_rejects=1)

    def test_compare_against_catalog_capacity(self):
        # Greedy reaches a decent fraction of the Lemma-1 optimum on STS(9).
        blocks = greedy_packing(9, 3, 2, 1, 8, rng=random.Random(3))
        assert coverage_multiplicity(9, blocks, 2) == 1


class TestAgainstCatalogDesigns:
    @pytest.mark.parametrize("v,r,t", [(13, 4, 2), (16, 4, 2), (10, 4, 3)])
    def test_catalog_designs_feed_packings(self, v, r, t):
        design = build(v, r, t)
        demand = design.num_blocks + 3
        blocks = packing_blocks_from_design(design, demand)
        assert coverage_multiplicity(v, blocks, t) == 2
