"""Tests for the existence catalog: tiers, spectra, builders, Fig-4 orders."""

import pytest

from repro.designs.blocks import DesignError
from repro.designs.catalog import (
    Existence,
    build,
    existence,
    largest_order,
    min_lambda,
    small_witt_design,
    steiner_orders,
)


class TestSpectra:
    def test_sts_spectrum_constructible(self):
        for v in (7, 9, 13, 15, 69, 255):
            assert existence(v, 3, 2) == Existence.CONSTRUCTIBLE
        for v in (8, 11, 17):
            assert existence(v, 3, 2) == Existence.NONE

    def test_2_design_r4_spectrum(self):
        # Hanani: complete for v = 1, 4 mod 12.
        assert existence(13, 4, 2) == Existence.CONSTRUCTIBLE  # PG(2,3)
        assert existence(16, 4, 2) == Existence.CONSTRUCTIBLE  # AG(2,4)
        assert existence(28, 4, 2) == Existence.CONSTRUCTIBLE  # unital H(3)
        assert existence(64, 4, 2) == Existence.CONSTRUCTIBLE  # AG(3,4)
        assert existence(25, 4, 2) >= Existence.KNOWN
        assert existence(37, 4, 2) >= Existence.KNOWN
        assert existence(70, 4, 2) == Existence.NONE  # the corrupted Fig-4 cell

    def test_2_design_r5_spectrum(self):
        assert existence(21, 5, 2) == Existence.CONSTRUCTIBLE  # PG(2,4)
        assert existence(25, 5, 2) == Existence.CONSTRUCTIBLE  # AG(2,5)
        assert existence(65, 5, 2) == Existence.CONSTRUCTIBLE  # unital H(4)
        assert existence(41, 5, 2) >= Existence.KNOWN
        assert existence(245, 5, 2) >= Existence.KNOWN
        assert existence(22, 5, 2) == Existence.NONE

    def test_sqs_spectrum(self):
        assert existence(8, 4, 3) == Existence.CONSTRUCTIBLE
        assert existence(20, 4, 3) == Existence.CONSTRUCTIBLE
        assert existence(26, 4, 3) == Existence.KNOWN  # exists, not built here
        assert existence(70, 4, 3) == Existence.KNOWN  # paper's n2 for (71, 4)
        assert existence(12, 4, 3) == Existence.NONE

    def test_3_5_sporadics(self):
        assert existence(17, 5, 3) == Existence.CONSTRUCTIBLE
        assert existence(65, 5, 3) == Existence.CONSTRUCTIBLE
        assert existence(26, 5, 3) == Existence.KNOWN  # Hanani-Hartman-Kramer
        # Divisibility-admissible but unknown: tier reflects that.
        assert existence(41, 5, 3) == Existence.DIVISIBILITY
        # 3-(47,5,1) fails divisibility ((46*45/12) is not integral).
        assert existence(47, 5, 3) == Existence.NONE

    def test_4_5_sporadics_and_nonexistence(self):
        assert existence(11, 5, 4) == Existence.CONSTRUCTIBLE
        assert existence(23, 5, 4) == Existence.KNOWN
        assert existence(47, 5, 4) == Existence.KNOWN
        assert existence(17, 5, 4) == Existence.NONE  # Ostergard-Pottonen

    def test_trivial_and_partition(self):
        assert existence(10, 4, 4) == Existence.CONSTRUCTIBLE
        assert existence(12, 4, 1) == Existence.CONSTRUCTIBLE
        assert existence(13, 4, 1) == Existence.NONE

    def test_lambda_scaling(self):
        # Copies of a constructible system realize any multiple.
        assert existence(9, 3, 2, 5) == Existence.CONSTRUCTIBLE
        # For 2-(8,3,lambda), divisibility forces lambda = 0 mod 6; lambda=6
        # is exactly the complete design (all 3-subsets), hence constructible.
        assert existence(8, 3, 2, 1) == Existence.NONE
        assert existence(8, 3, 2, 3) == Existence.NONE
        assert existence(8, 3, 2, 6) == Existence.CONSTRUCTIBLE
        # A multiplicity that only passes necessary conditions: 3-(41,5,2).
        assert existence(41, 5, 3, 2) == Existence.DIVISIBILITY


class TestBuilders:
    @pytest.mark.parametrize(
        "v,r,t",
        [(7, 3, 2), (9, 3, 2), (13, 4, 2), (16, 4, 2), (25, 5, 2),
         (8, 4, 3), (10, 4, 3), (17, 5, 3)],
    )
    def test_build_verifies(self, v, r, t):
        design = build(v, r, t)
        assert design.v == v
        assert design.block_size == r
        assert design.is_design(t, 1)

    def test_build_unconstructible_raises(self):
        with pytest.raises(DesignError):
            build(26, 4, 3)

    def test_build_nonexistent_raises(self):
        with pytest.raises(DesignError):
            build(8, 3, 2)

    def test_trivial_prefix_guard(self):
        design = build(10, 3, 3, trivial_prefix=20)
        assert design.num_blocks == 20
        with pytest.raises(DesignError):
            build(257, 5, 5)  # would materialize billions of blocks

    def test_witt_design(self):
        witt = small_witt_design()
        assert witt.v == 12
        assert witt.num_blocks == 132
        assert witt.is_design(5, 1)

    def test_build_s_4_5_11(self):
        design = build(11, 5, 4)
        assert design.num_blocks == 66
        assert design.is_design(4, 1)


class TestOrderQueries:
    def test_fig4_known_orders(self):
        # The paper's Fig. 4 table at the KNOWN tier (two corrected cells).
        expected = {
            (31, 3, 2): 31, (31, 4, 2): 28, (31, 4, 3): 28, (31, 5, 2): 25,
            (31, 5, 3): 26, (31, 5, 4): 23,
            (71, 3, 2): 69, (71, 4, 2): 64, (71, 4, 3): 70, (71, 5, 2): 65,
            (71, 5, 3): 65, (71, 5, 4): 47,
            (257, 3, 2): 255, (257, 4, 2): 256, (257, 4, 3): 256,
            (257, 5, 2): 245, (257, 5, 3): 257, (257, 5, 4): 243,
        }
        for (n, r, t), order in expected.items():
            assert largest_order(n, r, t, Existence.KNOWN) == order, (n, r, t)

    def test_steiner_orders_list(self):
        orders = steiner_orders(3, 2, 30, Existence.CONSTRUCTIBLE)
        assert orders == [3, 7, 9, 13, 15, 19, 21, 25, 27]

    def test_largest_order_none_when_empty(self):
        assert largest_order(4, 5, 4, Existence.KNOWN) is None

    def test_min_lambda(self):
        assert min_lambda(9, 3, 2, 3) == 1
        assert min_lambda(8, 3, 2, 10, tier=Existence.DIVISIBILITY) == 6
        assert min_lambda(8, 3, 2, 5, tier=Existence.DIVISIBILITY) is None
