"""Field-axiom and table tests for GF(p^m)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs.gf import GF, gf

FIELD_ORDERS = [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27]


@pytest.mark.parametrize("q", FIELD_ORDERS)
class TestFieldAxioms:
    def test_additive_group(self, q):
        field = gf(q)
        for a in field.elements():
            assert field.add(a, 0) == a
            assert field.add(a, field.neg(a)) == 0

    def test_multiplicative_group(self, q):
        field = gf(q)
        for a in field.elements():
            assert field.mul(a, 1) == a
            if a != 0:
                assert field.mul(a, field.inv(a)) == 1

    def test_distributivity_sampled(self, q):
        field = gf(q)
        elements = list(field.elements())
        sample = elements[:: max(1, len(elements) // 5)]
        for a in sample:
            for b in sample:
                for c in sample:
                    left = field.mul(a, field.add(b, c))
                    right = field.add(field.mul(a, b), field.mul(a, c))
                    assert left == right

    def test_primitive_element_generates(self, q):
        field = gf(q)
        g = field.primitive_element
        seen = set()
        value = 1
        for _ in range(q - 1):
            seen.add(value)
            value = field.mul(value, g)
        assert seen == set(range(1, q))


class TestFieldMisc:
    def test_non_prime_power_rejected(self):
        with pytest.raises(ValueError):
            GF(6)
        with pytest.raises(ValueError):
            GF(1)

    def test_out_of_range_rejected(self):
        field = gf(5)
        with pytest.raises(ValueError):
            field.add(5, 0)

    def test_zero_inverse_rejected(self):
        with pytest.raises(ZeroDivisionError):
            gf(7).inv(0)
        with pytest.raises(ZeroDivisionError):
            gf(7).pow(0, -1)

    def test_pow(self):
        field = gf(9)
        for a in range(1, 9):
            assert field.pow(a, 8) == 1  # Lagrange: a^(q-1) = 1
            assert field.pow(a, 0) == 1
        assert field.pow(0, 0) == 1
        assert field.pow(0, 3) == 0

    def test_frobenius_is_additive_in_char2(self):
        field = gf(16)
        for a in range(16):
            for b in range(0, 16, 3):
                assert field.pow(field.add(a, b), 2) == field.add(
                    field.pow(a, 2), field.pow(b, 2)
                )

    def test_cache_returns_same_object(self):
        assert gf(25) is gf(25)

    @settings(max_examples=30)
    @given(st.sampled_from([4, 8, 9, 16]), st.data())
    def test_sub_consistent(self, q, data):
        field = gf(q)
        a = data.draw(st.integers(0, q - 1))
        b = data.draw(st.integers(0, q - 1))
        assert field.add(field.sub(a, b), b) == a

    def test_char2_self_inverse_addition(self):
        field = gf(64)
        for a in range(0, 64, 7):
            assert field.add(a, a) == 0

    def test_div(self):
        field = gf(13)
        assert field.div(12, 4) == field.mul(12, field.inv(4))
