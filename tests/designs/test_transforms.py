"""Tests for design transformations (derived, copies, unions, complements)."""

import pytest

from repro.designs.blocks import BlockDesign, DesignError
from repro.designs.quadruple import boolean_sqs
from repro.designs.steiner_triple import steiner_triple_system
from repro.designs.transforms import (
    all_subsets_blocks,
    complement_design,
    derived_design,
    disjoint_union,
    repeat_design,
    residual_design,
    trivial_design_prefix,
)
from repro.util.combinatorics import binom


class TestRepeat:
    def test_repeat_multiplies_lambda(self):
        sts = steiner_triple_system(9)
        doubled = repeat_design(sts, 2)
        assert doubled.num_blocks == 2 * sts.num_blocks
        assert doubled.is_design(2, 2)

    def test_repeat_validates(self):
        with pytest.raises(ValueError):
            repeat_design(steiner_triple_system(7), 0)


class TestDisjointUnion:
    def test_union_is_packing_on_sum(self):
        a = steiner_triple_system(9)
        b = steiner_triple_system(7)
        union = disjoint_union([a, b])
        assert union.v == 16
        assert union.num_blocks == a.num_blocks + b.num_blocks
        # Pairs within chunks covered <= 1; crossing pairs covered 0.
        assert union.is_packing(2, 1)
        assert not union.is_design(2, 1)

    def test_union_rejects_mixed_block_sizes(self):
        with pytest.raises(DesignError):
            disjoint_union([steiner_triple_system(7), boolean_sqs(2)])

    def test_union_rejects_empty(self):
        with pytest.raises(ValueError):
            disjoint_union([])


class TestDerivedResidual:
    def test_derived_sqs_is_sts(self):
        # Derived design of a 3-(8,4,1) at any point is a 2-(7,3,1): Fano.
        sqs = boolean_sqs(3)
        derived = derived_design(sqs, 0)
        assert derived.v == 7
        assert derived.block_size == 3
        assert derived.is_design(2, 1)

    def test_derived_every_point(self):
        sqs = boolean_sqs(3)
        for point in range(8):
            assert derived_design(sqs, point).is_design(2, 1)

    def test_residual_counts(self):
        sqs = boolean_sqs(3)
        residual = residual_design(sqs, 0)
        assert residual.v == 7
        assert residual.block_size == 4
        # residual of 3-(8,4,1): a 2-(7,4,lambda (v-k)/(k-t+1)) = 2-(7,4,2).
        assert residual.is_design(2, 2)

    def test_point_validation(self):
        sqs = boolean_sqs(3)
        with pytest.raises(ValueError):
            derived_design(sqs, 8)
        with pytest.raises(ValueError):
            residual_design(sqs, -1)


class TestComplement:
    def test_complement_of_fano(self):
        fano = steiner_triple_system(7)
        comp = complement_design(fano)
        assert comp.block_size == 4
        assert comp.num_blocks == 7
        # Complement of a 2-(7,3,1) is a 2-(7,4,2).
        assert comp.is_design(2, 2)

    def test_complement_rejects_spanning(self):
        spanning = BlockDesign.from_blocks(3, [(0, 1, 2)])
        with pytest.raises(DesignError):
            complement_design(spanning)


class TestTrivial:
    def test_lazy_enumeration(self):
        blocks = list(all_subsets_blocks(5, 3))
        assert len(blocks) == 10
        assert blocks[0] == (0, 1, 2)
        assert blocks[-1] == (2, 3, 4)

    def test_prefix_design(self):
        design = trivial_design_prefix(6, 3, 7)
        assert design.num_blocks == 7
        assert design.is_packing(3, 1)

    def test_prefix_overflow_rejected(self):
        with pytest.raises(DesignError):
            trivial_design_prefix(4, 3, binom(4, 3) + 1)

    def test_args_validated(self):
        with pytest.raises(ValueError):
            list(all_subsets_blocks(3, 4))
