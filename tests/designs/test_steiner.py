"""Tests for STS (Bose/Skolem), SQS (boolean/doubling/search), and resolvables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs.quadruple import (
    boolean_sqs,
    double_sqs,
    sqs_constructible,
    sqs_exists,
    steiner_quadruple_system,
)
from repro.designs.resolvable import (
    is_one_factorization,
    one_factorization,
    one_factorization_design,
    pairs_design,
    partition_design,
)
from repro.designs.steiner_triple import steiner_triple_system, sts_exists
from repro.designs.blocks import DesignError


class TestSTS:
    def test_existence_criterion(self):
        admissible = [v for v in range(3, 30) if sts_exists(v)]
        assert admissible == [3, 7, 9, 13, 15, 19, 21, 25, 27]

    @pytest.mark.parametrize("v", [7, 13, 19, 25, 31])  # Skolem: v = 1 mod 6
    def test_skolem_orders(self, v):
        design = steiner_triple_system(v)
        assert design.v == v
        assert design.num_blocks == v * (v - 1) // 6
        assert design.is_design(2, 1)

    @pytest.mark.parametrize("v", [3, 9, 15, 21, 27, 33])  # Bose: v = 3 mod 6
    def test_bose_orders(self, v):
        design = steiner_triple_system(v)
        assert design.v == v
        assert design.is_design(2, 1)

    def test_sts_69_the_fig2_system(self):
        design = steiner_triple_system(69)
        assert design.num_blocks == 782
        assert design.is_design(2, 1)

    @pytest.mark.slow
    def test_sts_255(self):
        design = steiner_triple_system(255)
        assert design.num_blocks == 255 * 254 // 6
        assert design.is_design(2, 1)

    def test_inadmissible_rejected(self):
        for v in (5, 8, 11, 17):
            with pytest.raises(ValueError):
                steiner_triple_system(v)


class TestSQS:
    def test_existence_criterion(self):
        admissible = [v for v in range(4, 30) if sqs_exists(v)]
        assert admissible == [4, 8, 10, 14, 16, 20, 22, 26, 28]

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_boolean(self, m):
        design = boolean_sqs(m)
        v = 1 << m
        assert design.v == v
        assert design.num_blocks == v * (v - 1) * (v - 2) // 24
        assert design.is_design(3, 1)

    def test_doubling_preserves_design(self):
        doubled = double_sqs(boolean_sqs(3))
        assert doubled.v == 16
        assert doubled.is_design(3, 1)

    def test_doubling_rejects_odd(self):
        from repro.designs.blocks import BlockDesign

        odd = BlockDesign.from_blocks(5, [(0, 1, 2, 3)])
        with pytest.raises(DesignError):
            double_sqs(odd)

    @pytest.mark.parametrize("v", [10, 14, 20])
    def test_sporadic_and_doubled(self, v):
        design = steiner_quadruple_system(v)
        assert design.v == v
        assert design.is_design(3, 1)

    @pytest.mark.slow
    def test_sqs_28_the_paper_subsystem(self):
        design = steiner_quadruple_system(28)
        assert design.num_blocks == 28 * 27 * 26 // 24
        assert design.is_design(3, 1)

    def test_constructibility_map(self):
        assert sqs_constructible(8)
        assert sqs_constructible(10)
        assert sqs_constructible(20)
        assert sqs_constructible(28)
        assert sqs_constructible(256)
        assert not sqs_constructible(26)  # exists (Hanani) but not built here
        assert not sqs_constructible(9)  # does not exist at all

    def test_nonexistent_rejected(self):
        with pytest.raises(DesignError):
            steiner_quadruple_system(12)

    def test_existing_but_unimplemented_rejected(self):
        with pytest.raises(DesignError):
            steiner_quadruple_system(26)


class TestOneFactorization:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 12).map(lambda t: 2 * t))
    def test_round_robin_valid(self, v):
        rounds = one_factorization(v)
        assert len(rounds) == v - 1
        assert is_one_factorization(v, rounds)

    def test_odd_rejected(self):
        with pytest.raises(ValueError):
            one_factorization(7)

    def test_validator_catches_bad(self):
        rounds = one_factorization(6)
        rounds[0][0] = rounds[1][0]  # duplicate an edge
        assert not is_one_factorization(6, rounds)


class TestPartitionAndPairs:
    def test_partition_design(self):
        design = partition_design(12, 4)
        assert design.num_blocks == 3
        assert design.is_design(1, 1)

    def test_partition_rejects_nondivisor(self):
        with pytest.raises(ValueError):
            partition_design(10, 4)

    def test_pairs_design(self):
        design = pairs_design(6)
        assert design.num_blocks == 15
        assert design.is_design(2, 1)

    def test_resolved_pairs_prefix_balance(self):
        design = one_factorization_design(8)
        assert design.is_design(2, 1)
        # Any prefix of whole rounds has perfectly uniform point loads.
        first_round = design.blocks[:4]
        points = [p for blk in first_round for p in blk]
        assert sorted(points) == list(range(8))
