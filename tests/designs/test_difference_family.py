"""Tests for cyclic difference families and their developed designs."""

import pytest

from repro.designs.blocks import DesignError
from repro.designs.difference_family import (
    cyclic_2design,
    develop_difference_family,
    difference_family_admissible,
    difference_family_constructible,
    find_difference_family,
)


class TestAdmissibility:
    def test_divisibility_rule(self):
        assert difference_family_admissible(13, 4)  # 12 | 12
        assert difference_family_admissible(25, 4)  # 12 | 24
        assert not difference_family_admissible(16, 4)  # 12 does not divide 15
        assert difference_family_admissible(41, 5)  # 20 | 40
        assert not difference_family_admissible(26, 5)
        assert not difference_family_admissible(4, 5)  # v <= r


class TestSearch:
    @pytest.mark.parametrize(
        "v,r,expected_blocks",
        [(7, 3, 1), (13, 4, 1), (21, 5, 1), (37, 4, 3), (41, 5, 2), (49, 4, 4)],
    )
    def test_known_families_found(self, v, r, expected_blocks):
        family = find_difference_family(v, r)
        assert family is not None
        assert len(family) == expected_blocks
        # Differences cover Z_v \ {0} exactly once.
        seen = set()
        for block in family:
            for a in block:
                for b in block:
                    if a != b:
                        d = (a - b) % v
                        assert d not in seen
                        seen.add(d)
        assert seen == set(range(1, v))

    def test_inadmissible_returns_none(self):
        assert find_difference_family(16, 4) is None

    def test_no_family_within_normalization(self):
        # v = 25 is composite; the unit-rooted search finds nothing (and no
        # cyclic 2-(25,4,1) design exists over Z_25 in any case).
        assert find_difference_family(25, 4) is None


class TestDevelopment:
    @pytest.mark.parametrize("v,r", [(7, 3), (13, 4), (37, 4), (41, 5)])
    def test_developed_design_is_2_design(self, v, r):
        design = cyclic_2design(v, r)
        assert design.v == v
        assert design.block_size == r
        assert design.num_blocks == v * (v - 1) // (r * (r - 1))
        assert design.is_design(2, 1)

    def test_cyclic_invariance(self):
        design = cyclic_2design(13, 4)
        blocks = set(design.blocks)
        shifted = {
            tuple(sorted((p + 1) % 13 for p in block)) for block in blocks
        }
        assert shifted == blocks

    def test_develop_rejects_empty(self):
        with pytest.raises(DesignError):
            develop_difference_family(7, ())

    def test_unfindable_raises(self):
        with pytest.raises(DesignError):
            cyclic_2design(25, 4)

    def test_constructible_probe(self):
        assert difference_family_constructible(37, 4)
        assert not difference_family_constructible(25, 4)


class TestCatalogIntegration:
    def test_new_constructible_orders(self):
        from repro.designs.catalog import Existence, build, existence

        for v, r in [(37, 4), (49, 4), (61, 4), (41, 5), (61, 5)]:
            assert existence(v, r, 2) == Existence.CONSTRUCTIBLE, (v, r)
            design = build(v, r, 2)
            assert design.is_design(2, 1)

    def test_beyond_probe_limit_stays_known(self):
        from repro.designs.catalog import Existence, existence

        # 73 = 1 mod 12 exists (Hanani) but the probe limit excludes it.
        assert existence(73, 4, 2) == Existence.KNOWN
