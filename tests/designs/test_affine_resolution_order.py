"""The affine line generator emits blocks in resolution order.

``affine_geometry_design`` enumerates lines direction by direction, and
each direction's lines partition the point set — so consecutive runs of
``q^{d-1}`` blocks are parallel classes. Placements that consume these
blocks in order therefore keep per-node load perfectly uniform at every
class boundary, the strongest version of the paper's Observation-2
load-balance remark. This test pins that ordering contract.
"""

import pytest

from repro.designs.affine import affine_geometry_design
from repro.designs.resolution import is_resolution


@pytest.mark.parametrize("d,q", [(2, 3), (2, 4), (2, 5), (3, 2), (3, 3)])
def test_affine_blocks_grouped_by_parallel_class(d, q):
    design = affine_geometry_design(d, q)
    class_size = q ** (d - 1)
    assert design.num_blocks % class_size == 0
    classes = [
        list(design.blocks[i : i + class_size])
        for i in range(0, design.num_blocks, class_size)
    ]
    assert is_resolution(design, classes)


def test_prefix_loads_uniform_at_class_boundaries():
    design = affine_geometry_design(2, 4)
    class_size = 4
    for boundary in range(class_size, design.num_blocks + 1, class_size):
        loads = [0] * design.v
        for block in design.blocks[:boundary]:
            for point in block:
                loads[point] += 1
        assert len(set(loads)) == 1, f"unbalanced at boundary {boundary}"
