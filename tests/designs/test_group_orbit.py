"""Tests for projective-line group actions and orbit designs."""

import pytest

from repro.designs.group_orbit import (
    frobenius_permutation,
    orbit_design,
    orbit_of_block,
    pgammal2_generators,
    pgl2_generators,
    psl2_generators,
    search_orbit_steiner,
)


def is_permutation(perm, size):
    return sorted(perm) == list(range(size))


class TestGenerators:
    @pytest.mark.parametrize("q", [3, 5, 7, 9, 11])
    def test_pgl_generators_are_permutations(self, q):
        for perm in pgl2_generators(q):
            assert is_permutation(perm, q + 1)

    @pytest.mark.parametrize("q", [5, 9, 13])
    def test_psl_generators_are_permutations(self, q):
        for perm in psl2_generators(q):
            assert is_permutation(perm, q + 1)

    def test_frobenius_fixes_prime_subfield(self):
        perm = frobenius_permutation(9)
        # GF(3) = {0, 1, 2} lives inside GF(9) as the prime field.
        assert perm[0] == 0 and perm[1] == 1
        assert perm[9] == 9  # infinity fixed
        assert is_permutation(perm, 10)

    def test_pgammal_includes_frobenius(self):
        gens = pgammal2_generators(9)
        assert len(gens) == 4

    def test_group_order_pgl(self):
        # |PGL(2,5)| = 120: closure of generators acting on tuples.
        q = 5
        gens = pgl2_generators(q)
        identity = tuple(range(q + 1))
        seen = {identity}
        frontier = [identity]
        while frontier:
            current = frontier.pop()
            for gen in gens:
                image = tuple(gen[current[i]] for i in range(q + 1))
                if image not in seen:
                    seen.add(image)
                    frontier.append(image)
        assert len(seen) == q * (q * q - 1)


class TestOrbits:
    def test_orbit_closure_under_generators(self):
        gens = pgl2_generators(5)
        orbit = orbit_of_block({0, 1, 2}, gens)
        for block in orbit:
            for gen in gens:
                assert frozenset(gen[p] for p in block) in orbit

    def test_pgl_is_3_transitive_on_triples(self):
        # One orbit = all C(6,3) triples of PG(1,5).
        orbit = orbit_of_block({0, 1, 5}, pgl2_generators(5))
        assert len(orbit) == 20

    def test_orbit_design_validates(self):
        with pytest.raises(ValueError):
            # All triples under PGL(2,5) = trivial 3-(6,3,1)... which IS a
            # design; use a wrong lambda to trip validation.
            orbit_design(6, {0, 1, 5}, pgl2_generators(5), t=3, lam=2)

    def test_orbit_design_accepts_valid(self):
        design = orbit_design(6, {0, 1, 5}, pgl2_generators(5), t=3, lam=1)
        assert design.num_blocks == 20


class TestOrbitSearch:
    def test_witt_design_found_under_psl_2_11(self):
        design = search_orbit_steiner(12, 6, 5, psl2_generators(11))
        assert design is not None
        assert design.num_blocks == 132
        assert design.is_design(5, 1)

    def test_returns_none_when_divisibility_fails(self):
        # C(7,2)/C(4,2) is not integral: no S(2,4,7).
        assert search_orbit_steiner(7, 4, 2, pgl2_generators(7)[:1]) is None

    def test_returns_none_when_no_invariant_design(self):
        # SQS(10) exists but is not a single PSL(2,9) orbit (discovered
        # during development; the DLX path covers construction instead).
        assert search_orbit_steiner(10, 4, 3, psl2_generators(9)) is None
