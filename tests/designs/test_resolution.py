"""Tests for resolution search (parallel classes)."""

import pytest

from repro.designs.affine import affine_plane
from repro.designs.blocks import BlockDesign
from repro.designs.resolution import (
    find_resolution,
    is_resolution,
    resolution_block_shape,
    resolved_block_order,
)
from repro.designs.resolvable import one_factorization_design, partition_design
from repro.designs.steiner_triple import steiner_triple_system


class TestShape:
    def test_affine_plane_shape(self):
        design = affine_plane(3)
        assert resolution_block_shape(design) == (4, 3)

    def test_fano_has_no_shape(self):
        fano = steiner_triple_system(7)
        assert resolution_block_shape(fano) is None  # 3 does not divide 7

    def test_sts9_shape(self):
        design = steiner_triple_system(9)
        assert resolution_block_shape(design) == (4, 3)


class TestFindResolution:
    def test_affine_plane_resolvable(self):
        design = affine_plane(3)
        classes = find_resolution(design)
        assert classes is not None
        assert len(classes) == 4
        assert is_resolution(design, classes)

    def test_affine_plane_4(self):
        design = affine_plane(4)
        classes = find_resolution(design)
        assert classes is not None
        assert len(classes) == 5
        assert is_resolution(design, classes)

    def test_sts9_resolvable(self):
        # STS(9) = AG(2,3) lines: the unique Kirkman system of order 9.
        design = steiner_triple_system(9)
        classes = find_resolution(design)
        assert classes is not None
        assert is_resolution(design, classes)

    def test_fano_not_resolvable(self):
        assert find_resolution(steiner_triple_system(7)) is None

    def test_pairs_resolution(self):
        design = one_factorization_design(8)
        classes = find_resolution(design)
        assert classes is not None
        assert len(classes) == 7
        assert is_resolution(design, classes)

    def test_partition_design_is_one_class(self):
        design = partition_design(12, 4)
        classes = find_resolution(design)
        assert classes == [list(design.blocks)]

    def test_non_resolvable_with_valid_shape(self):
        # 4 blocks on 4 points, block size 2, but {0,1} appears twice and
        # {2,3} never — classes require a partner for {0,1} both times.
        design = BlockDesign.from_blocks(4, [(0, 1), (0, 1), (2, 3), (1, 2)])
        assert resolution_block_shape(design) == (2, 2)
        assert find_resolution(design) is None


class TestResolvedOrder:
    def test_order_balances_prefixes(self):
        design = affine_plane(3)
        order = resolved_block_order(design)
        assert order is not None
        assert sorted(order) == sorted(design.blocks)
        # Every class-sized prefix covers each point exactly once per class.
        for boundary in range(3, 13, 3):
            points = [p for block in order[:boundary] for p in block]
            assert len(set(points)) == 9
            assert all(points.count(p) == boundary // 3 for p in set(points))

    def test_order_none_for_fano(self):
        assert resolved_block_order(steiner_triple_system(7)) is None


class TestValidator:
    def test_rejects_wrong_blocks(self):
        design = affine_plane(3)
        classes = find_resolution(design)
        broken = [list(cls) for cls in classes]
        broken[0][0] = (0, 1, 2) if broken[0][0] != (0, 1, 2) else (0, 1, 3)
        assert not is_resolution(design, broken)

    def test_rejects_non_partition_class(self):
        design = BlockDesign.from_blocks(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        fake = [[(0, 1), (1, 2)], [(2, 3), (0, 3)]]
        assert not is_resolution(design, fake)
