"""Property tests for the synthetic workload generators."""

import random
from itertools import islice

import pytest

from repro.cluster.workload import (
    ChurnKind,
    churn_trace,
    geometric_object_counts,
)


class TestGeometricObjectCounts:
    def test_paper_ladder_is_the_default(self):
        assert geometric_object_counts() == [
            600, 1200, 2400, 4800, 9600, 19200, 38400
        ]

    @pytest.mark.parametrize("start,doublings", [(1, 0), (5, 1), (600, 6), (7, 10)])
    def test_shape_properties(self, start, doublings):
        ladder = geometric_object_counts(start, doublings)
        assert len(ladder) == doublings + 1
        assert ladder[0] == start
        assert all(b == 2 * a for a, b in zip(ladder, ladder[1:]))

    def test_zero_doublings_is_a_singleton(self):
        assert geometric_object_counts(17, 0) == [17]

    @pytest.mark.parametrize("start,doublings", [(0, 3), (-5, 3), (600, -1)])
    def test_rejects_degenerate_shapes(self, start, doublings):
        with pytest.raises(ValueError):
            geometric_object_counts(start, doublings)


class TestChurnTrace:
    def test_exact_warmup_prefix(self):
        for warmup in (0, 1, 7, 32):
            events = list(
                churn_trace(40, 0.3, warmup_arrivals=warmup,
                            rng=random.Random(1))
            )
            assert len(events) == warmup + 40
            assert all(
                e.kind == ChurnKind.ARRIVAL for e in events[:warmup]
            ), f"warmup={warmup} leading events must all be arrivals"

    def test_deterministic_under_seeded_rng(self):
        first = [
            e.kind
            for e in churn_trace(200, 0.55, warmup_arrivals=8,
                                 rng=random.Random(77))
        ]
        second = [
            e.kind
            for e in churn_trace(200, 0.55, warmup_arrivals=8,
                                 rng=random.Random(77))
        ]
        assert first == second
        different = [
            e.kind
            for e in churn_trace(200, 0.55, warmup_arrivals=8,
                                 rng=random.Random(78))
        ]
        assert first != different

    @pytest.mark.parametrize("probability", [0.0, 1.0])
    def test_probability_bounds_are_degenerate_traces(self, probability):
        events = list(
            churn_trace(60, probability, warmup_arrivals=5,
                        rng=random.Random(0))
        )
        expected = (
            ChurnKind.ARRIVAL if probability == 1.0 else ChurnKind.DEPARTURE
        )
        assert all(e.kind == expected for e in events[5:])

    def test_arrival_fraction_tracks_probability(self):
        rng = random.Random(123)
        events = list(churn_trace(4000, 0.6, warmup_arrivals=0, rng=rng))
        arrivals = sum(1 for e in events if e.kind == ChurnKind.ARRIVAL)
        assert 0.55 < arrivals / len(events) < 0.65

    def test_is_lazy(self):
        # A huge trace must not materialize: take a prefix only.
        trace = churn_trace(10**9, 0.5, warmup_arrivals=2,
                            rng=random.Random(0))
        assert len(list(islice(trace, 10))) == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"steps": 5, "arrival_probability": 1.5},
            {"steps": 5, "arrival_probability": -0.1},
            {"steps": -1, "arrival_probability": 0.5},
            {"steps": 5, "arrival_probability": 0.5, "warmup_arrivals": -2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            list(churn_trace(**kwargs))
