"""Tests for nodes, cluster state, and liveness accounting."""

import pytest

from repro.cluster.cluster import Cluster, ClusterError
from repro.cluster.node import Node, NodeState
from repro.cluster.objects import (
    majority_quorum_rule,
    read_one_rule,
    threshold_rule,
    write_all_rule,
)
from repro.core.placement import Placement


class TestNode:
    def test_host_and_evict(self):
        node = Node(node_id=0, capacity=2)
        node.host(10)
        node.host(11)
        assert node.load == 2
        node.evict(10)
        assert node.load == 1

    def test_capacity_enforced(self):
        node = Node(node_id=0, capacity=1)
        node.host(1)
        with pytest.raises(ValueError):
            node.host(2)

    def test_double_host_rejected(self):
        node = Node(node_id=0)
        node.host(1)
        with pytest.raises(ValueError):
            node.host(1)

    def test_evict_missing_rejected(self):
        with pytest.raises(ValueError):
            Node(node_id=0).evict(5)

    def test_fail_recover(self):
        node = Node(node_id=0)
        node.fail()
        assert node.state == NodeState.FAILED
        node.recover()
        assert node.is_up


class TestCluster:
    def test_apply_placement(self):
        cluster = Cluster(5)
        placement = Placement.from_replica_sets(5, [(0, 1), (2, 3), (3, 4)])
        cluster.apply_placement(placement)
        assert len(cluster.objects) == 3
        assert cluster.loads() == [1, 1, 1, 2, 1]

    def test_apply_mismatched_size(self):
        cluster = Cluster(4)
        placement = Placement.from_replica_sets(5, [(0, 4)])
        with pytest.raises(ClusterError):
            cluster.apply_placement(placement)

    def test_add_remove_object(self):
        cluster = Cluster(4)
        cluster.add_object(7, [0, 1])
        assert cluster.loads() == [1, 1, 0, 0]
        cluster.remove_object(7)
        assert cluster.loads() == [0, 0, 0, 0]
        with pytest.raises(ClusterError):
            cluster.remove_object(7)

    def test_duplicate_object_rejected(self):
        cluster = Cluster(4)
        cluster.add_object(1, [0, 1])
        with pytest.raises(ClusterError):
            cluster.add_object(1, [2, 3])

    def test_fail_nodes_and_double_fault(self):
        cluster = Cluster(4)
        cluster.fail_nodes([0, 2])
        assert cluster.failed_nodes() == frozenset({0, 2})
        with pytest.raises(ClusterError):
            cluster.fail_nodes([2])
        cluster.recover_all()
        assert cluster.failed_nodes() == frozenset()

    def test_liveness_rules(self):
        cluster = Cluster(5)
        cluster.add_object(0, [0, 1, 2])
        cluster.fail_nodes([0])
        assert cluster.live_objects(read_one_rule(3)) == [0]
        assert cluster.live_objects(write_all_rule()) == []
        assert cluster.live_objects(majority_quorum_rule(3)) == [0]
        cluster.fail_nodes([1])
        assert cluster.live_objects(majority_quorum_rule(3)) == []

    def test_availability_fraction(self):
        cluster = Cluster(5)
        cluster.add_object(0, [0, 1])
        cluster.add_object(1, [2, 3])
        cluster.fail_nodes([0, 1])
        rule = threshold_rule(2)
        assert cluster.availability(rule) == pytest.approx(0.5)

    def test_empty_cluster_availability(self):
        assert Cluster(3).availability(threshold_rule(1)) == 1.0

    def test_snapshot_roundtrip(self):
        cluster = Cluster(5)
        cluster.add_object(3, [0, 1])
        cluster.add_object(9, [2, 4])
        snapshot = cluster.placement_snapshot()
        assert snapshot.b == 2
        assert snapshot.replica_sets == (frozenset({0, 1}), frozenset({2, 4}))

    def test_snapshot_empty_rejected(self):
        with pytest.raises(ClusterError):
            Cluster(3).placement_snapshot()

    def test_racks(self):
        cluster = Cluster(6, racks=3)
        assert cluster.racks == 3
        assert [node.rack for node in cluster.nodes] == [0, 1, 2, 0, 1, 2]

    def test_validation(self):
        with pytest.raises(ClusterError):
            Cluster(0)
        with pytest.raises(ClusterError):
            Cluster(3, racks=0)
        cluster = Cluster(3)
        with pytest.raises(ClusterError):
            cluster.add_object(0, [0, 5])
        with pytest.raises(ClusterError):
            cluster.fail_nodes([9])
