"""Tests for failure injectors, workloads, metrics and the scenario engine."""

import random

import pytest

from repro.cluster.cluster import Cluster, ClusterError
from repro.cluster.engine import (
    compare_strategies,
    run_attack_grid,
    run_attack_scenario,
    run_churn_scenario,
    run_random_failure_scenario,
)
from repro.cluster.failures import (
    CorrelatedInjector,
    RandomInjector,
    WorstCaseInjector,
    fail_specific,
)
from repro.cluster.metrics import AvailabilityTimeline, LoadStats
from repro.cluster.objects import threshold_rule
from repro.cluster.workload import (
    ChurnKind,
    churn_trace,
    geometric_object_counts,
)
from repro.core.adaptive import AdaptiveComboPlacement
from repro.core.batch import AttackEngine
from repro.core.placement import Placement
from repro.core.random_placement import RandomStrategy
from repro.core.simple import SimpleStrategy


def deployed_cluster(n=10, b=25, r=3, seed=0):
    cluster = Cluster(n, racks=2)
    placement = RandomStrategy(n, r).place(b, random.Random(seed))
    cluster.apply_placement(placement)
    return cluster


class TestInjectors:
    def test_random_injector(self):
        cluster = deployed_cluster()
        nodes = RandomInjector(random.Random(0)).inject(cluster, 3, threshold_rule(2))
        assert len(nodes) == 3
        assert cluster.failed_nodes() == frozenset(nodes)

    def test_random_injector_exhausts(self):
        cluster = Cluster(3)
        cluster.add_object(0, [0, 1, 2])
        with pytest.raises(ClusterError):
            RandomInjector(random.Random(0)).inject(cluster, 4, threshold_rule(1))

    def test_correlated_injector_kills_rack(self):
        cluster = deployed_cluster()
        nodes = CorrelatedInjector(random.Random(0)).inject(cluster, rack=1)
        assert all(cluster.nodes[i].rack == 1 for i in nodes)
        assert len(nodes) == 5

    def test_correlated_injector_empty_rack(self):
        cluster = Cluster(4, racks=2)
        cluster.add_object(0, [0, 1])
        CorrelatedInjector().inject(cluster, rack=0)
        with pytest.raises(ClusterError):
            CorrelatedInjector().inject(cluster, rack=0)

    def test_worst_case_injector_beats_random(self):
        cluster = deployed_cluster(b=40)
        rule = threshold_rule(2)
        worst = WorstCaseInjector(effort="exact").select(cluster, 3, rule)
        snapshot = cluster.placement_snapshot()
        worst_damage = len(snapshot.failed_objects(worst, 2))
        random_damage = len(
            snapshot.failed_objects(
                RandomInjector(random.Random(1)).select(cluster, 3, rule), 2
            )
        )
        assert worst_damage >= random_damage

    def test_fail_specific(self):
        cluster = deployed_cluster()
        assert fail_specific(cluster, [4, 2]) == [2, 4]
        assert cluster.failed_nodes() == frozenset({2, 4})

    def test_worst_case_injector_reuses_pinned_delta_engine(self):
        # An online adversary pins a delta-aware engine; injections then
        # skip the snapshot + fingerprint path and match it bit-for-bit.
        cluster = deployed_cluster(b=30)
        rule = threshold_rule(2)
        snapshot_based = WorstCaseInjector(effort="fast", seed=4)
        expected = snapshot_based.select(cluster, 3, rule)
        engine = AttackEngine(cluster.placement_snapshot())
        pinned = WorstCaseInjector(effort="fast", seed=4, engine=engine)
        assert pinned.select(cluster, 3, rule) == expected
        assert pinned.last_result.damage == snapshot_based.last_result.damage
        # Mutate the population through the engine; the injector tracks it.
        cluster.add_object(100, [0, 1, 2])
        cluster.add_object(101, [0, 1, 3])
        engine.apply_delta(added_objects=[[0, 1, 2], [0, 1, 3]])
        moved = pinned.select(cluster, 3, rule)
        fresh = WorstCaseInjector(effort="fast", seed=4).select(
            cluster, 3, rule
        )
        assert moved == fresh

    def test_worst_case_injector_warm_start(self):
        cluster = deployed_cluster(b=30)
        rule = threshold_rule(2)
        injector = WorstCaseInjector(effort="fast", seed=2)
        first = injector.inject(cluster, 2, rule)
        cluster.recover_all()
        chained = injector.select(cluster, 3, rule, warm_start=first)
        assert len(chained) == 3


class TestWorkload:
    def test_geometric_counts(self):
        assert geometric_object_counts(600, 6) == [
            600, 1200, 2400, 4800, 9600, 19200, 38400
        ]
        with pytest.raises(ValueError):
            geometric_object_counts(0, 3)

    def test_churn_trace_shape(self):
        events = list(churn_trace(50, 0.7, warmup_arrivals=10, rng=random.Random(0)))
        assert len(events) == 60
        assert all(e.kind == ChurnKind.ARRIVAL for e in events[:10])
        arrivals = sum(1 for e in events[10:] if e.kind == ChurnKind.ARRIVAL)
        assert 20 <= arrivals <= 50

    def test_churn_validation(self):
        with pytest.raises(ValueError):
            list(churn_trace(5, 1.5))
        with pytest.raises(ValueError):
            list(churn_trace(-1))


class TestMetrics:
    def test_load_stats(self):
        stats = LoadStats.from_loads([2, 4, 6])
        assert stats.minimum == 2
        assert stats.maximum == 6
        assert stats.mean == pytest.approx(4.0)
        assert stats.imbalance == pytest.approx(1.5)
        with pytest.raises(ValueError):
            LoadStats.from_loads([])

    def test_timeline(self):
        timeline = AvailabilityTimeline()
        timeline.record(step=1, b=10, available=9, lower_bound=8)
        timeline.record(step=2, b=10, available=7, lower_bound=8)  # violation
        assert timeline.worst_fraction() == pytest.approx(0.7)
        assert timeline.bound_violations() == 1


class TestEngine:
    def test_attack_scenario(self):
        placement = SimpleStrategy(13, 3, 1).place(26)
        report = run_attack_scenario(placement, 3, threshold_rule(2), effort="exact")
        assert report.b == 26
        assert report.objects_available + report.objects_lost == 26
        assert report.k == 3
        assert report.load.maximum >= 1

    def test_attack_grid_matches_single_scenarios(self):
        placement = SimpleStrategy(13, 3, 1).place(26)
        rule = threshold_rule(2)
        reports = run_attack_grid(placement, (2, 3, 4), rule, effort="exact")
        assert [r.k for r in reports] == [2, 3, 4]
        for report in reports:
            single = run_attack_scenario(placement, report.k, rule, effort="exact")
            assert report.objects_lost == single.objects_lost
        # Worst-case losses are monotone in k.
        losses = [r.objects_lost for r in reports]
        assert losses == sorted(losses)

    def test_random_failure_scenario(self):
        placement = RandomStrategy(10, 3).place(30, random.Random(0))
        reports = run_random_failure_scenario(
            placement, 2, threshold_rule(2), repetitions=5, rng=random.Random(1)
        )
        assert len(reports) == 5
        assert all(r.b == 30 for r in reports)

    def test_random_failure_scenario_derived_seed_determinism(self):
        # Parameter parity with run_attack_scenario: no rng means the
        # draws derive from (seed, k, s) and replay bit-for-bit.
        placement = RandomStrategy(10, 3).place(30, random.Random(0))
        rule = threshold_rule(2)
        first = run_random_failure_scenario(placement, 2, rule,
                                            repetitions=4, seed=9)
        second = run_random_failure_scenario(placement, 2, rule,
                                             repetitions=4, seed=9)
        assert [r.failed_nodes for r in first] == [
            r.failed_nodes for r in second
        ]
        other = run_random_failure_scenario(placement, 2, rule,
                                            repetitions=4, seed=10)
        assert [r.failed_nodes for r in first] != [
            r.failed_nodes for r in other
        ]

    def test_random_failure_scenario_accepts_racks(self):
        placement = RandomStrategy(10, 3).place(30, random.Random(0))
        reports = run_random_failure_scenario(
            placement, 2, threshold_rule(2), repetitions=2, racks=5, seed=1
        )
        assert len(reports) == 2

    def test_compare_strategies(self):
        simple = SimpleStrategy(13, 3, 1).place(26)
        rnd = RandomStrategy(13, 3).place(26, random.Random(2))
        reports = compare_strategies([simple, rnd], 3, threshold_rule(2), effort="exact")
        assert len(reports) == 2
        # The Simple placement guarantees >= its bound; in this regime it
        # should not lose to Random's worst case.
        assert reports[0].objects_available >= reports[1].objects_available - 1

    def test_churn_scenario(self):
        adaptive = AdaptiveComboPlacement(13, 3, 2, 3, replan_interval=8)
        timeline = AvailabilityTimeline()
        events = churn_trace(24, 0.75, warmup_arrivals=16, rng=random.Random(3))
        run_churn_scenario(
            adaptive,
            events,
            k=3,
            rule=threshold_rule(2),
            measure_every=8,
            effort="fast",
            on_sample=lambda step, b, avail, lb: timeline.record(
                step=step, b=b, available=avail, lower_bound=lb
            ),
        )
        assert timeline.samples, "expected at least one measurement"
        assert timeline.bound_violations() == 0
