#!/usr/bin/env python3
"""Audit an existing placement: measured overlaps -> certified guarantees.

Not every cluster was placed by this library. This example shows the
auditing path for placements that came from elsewhere: measure the
placement's overlap profile (the largest number of objects sharing 1, 2,
... nodes), compare it against what Random placement would produce, and
derive the availability floors that Lemma 2 certifies from the measured
multiplicities — no adversary simulation required.

The "foreign" placement here is deliberately flawed: a mostly-random
allocator with a hotspot bug that co-locates every 20th object on the same
three nodes. The audit catches it: the x = 2 multiplicity explodes past
the Random baseline, and the certified floor collapses for majority-quorum
objects.

Run:  python examples/placement_audit.py
"""

import os
import random

from repro import Placement, RandomStrategy, audit_placement, best_attack
from repro.core.inspect import expected_random_multiplicity

SMALL = os.environ.get("REPRO_EXAMPLE_SCALE", "") == "small"


def buggy_allocator(n: int, b: int, r: int, seed: int) -> Placement:
    """Random placement with a co-location bug on every 20th object."""
    rng = random.Random(seed)
    hotspot = (3, 7, 11)
    sets = []
    for i in range(b):
        if i % 20 == 0:
            sets.append(hotspot)
        else:
            sets.append(tuple(rng.sample(range(n), r)))
    return Placement.from_replica_sets(n, sets, strategy="buggy")


def main() -> None:
    n, b, r, s, k = 31, (200 if SMALL else 600), 3, 2, 3

    suspect = buggy_allocator(n, b, r, seed=9)
    healthy = RandomStrategy(n, r).place(b, random.Random(9))

    for name, placement in (("buggy allocator", suspect), ("Random", healthy)):
        print(f"--- {name} ---")
        audit = audit_placement(placement, k_values=(k,), s_values=(1, 2, 3))
        print(audit.render())
        baseline = expected_random_multiplicity(n, b, r, 1)
        measured = audit.profile.lam(1)
        verdict = "SUSPICIOUS" if measured > 5 * max(baseline, 1) else "ok"
        print(
            f"pair-overlap check: measured lambda_1={measured}, Random "
            f"baseline ~{baseline:.2f} -> {verdict}"
        )
        attack = best_attack(placement, k, s, effort="auto")
        print(
            f"adversary check (k={k}, s={s}): {attack.damage} objects "
            f"killed by {sorted(attack.nodes)}\n"
        )

    print(
        "The hotspot triple is exactly what a worst-case adversary finds: "
        "auditing overlaps predicts the attack before it happens."
    )


if __name__ == "__main__":
    main()
