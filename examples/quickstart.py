#!/usr/bin/env python3
"""Quickstart: place objects with Combo, attack them, compare with Random.

The 60-second tour of the library:

1. pick system parameters (the paper's notation: n nodes, b objects,
   r replicas, fatality threshold s, k failures);
2. build a Combo placement (the paper's optimized strategy) and read off
   its availability *guarantee*;
3. simulate the worst-case adversary against it and against load-balanced
   Random placement;
4. check the guarantee held and see who survived better.

Run:  python examples/quickstart.py
"""

import os
import random

from repro import (
    ComboStrategy,
    RandomStrategy,
    evaluate_availability,
    pr_avail_rnd,
)
from repro.designs.catalog import Existence

SMALL = os.environ.get("REPRO_EXAMPLE_SCALE", "") == "small"


def main() -> None:
    n, b, r, s, k = 71, (300 if SMALL else 1200), 3, 2, 3
    print(f"System: n={n} nodes, b={b} objects, r={r} replicas, "
          f"objects die at s={s} replica failures, adversary kills k={k} nodes\n")

    # --- the paper's strategy ------------------------------------------------
    combo = ComboStrategy(n, r, s, tier=Existence.CONSTRUCTIBLE)
    plan = combo.plan(b, k)
    print(f"Combo plan: lambdas={plan.lambdas} (objects per stratum: "
          f"{plan.counts})")
    print(f"Guaranteed available objects (Lemma 3): {plan.lower_bound}")

    placement = combo.place(b, k, plan=plan)
    report = evaluate_availability(placement, k, s)
    print(f"Worst-case attack found: {report.attack.nodes} "
          f"-> {report.available} objects survive "
          f"({report.fraction_available:.2%})")
    assert report.available >= plan.lower_bound, "bound violated?!"
    print("Guarantee held.\n")

    # --- the baseline ---------------------------------------------------------
    rnd_placement = RandomStrategy(n, r).place(b, random.Random(42))
    rnd_report = evaluate_availability(rnd_placement, k, s)
    predicted = pr_avail_rnd(n, k, r, s, b)
    print(f"Random placement: worst-case attack -> {rnd_report.available} "
          f"objects survive (analytic prediction prAvail = {predicted})")

    saved = rnd_report.failed - report.failed
    print(f"\nCombo preserved {saved} more objects than Random under "
          f"worst-case failures.")


if __name__ == "__main__":
    main()
