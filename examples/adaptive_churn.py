#!/usr/bin/env python3
"""Adaptive placement under object churn — the paper's future-work item.

Sec. IV-D of the paper leaves "an algorithm to adapt our placements as new
objects come and go" to future work. The library implements one
(:class:`repro.AdaptiveComboPlacement`): packing blocks are recycled
through free lists so departures don't strand packing capacity, and a
periodically-refreshed DP plan steers arrivals into strata.

This example drives 400 churn events (60% arrivals) against a 31-node
cluster, measuring after every 25 events:

* the live object count,
* worst-case availability under k = 3 targeted failures,
* the Lemma-3 lower bound implied by the lambda actually paid so far.

The bound must never be violated — that is the adaptive invariant.

Run:  python examples/adaptive_churn.py
"""

import random

from repro import AdaptiveComboPlacement, evaluate_availability
from repro.cluster import churn_trace
from repro.cluster.workload import ChurnKind
from repro.util.tables import TextTable

N, R, S, K = 31, 3, 2, 3


def main() -> None:
    adaptive = AdaptiveComboPlacement(
        N, R, S, K, expected_objects=64, replan_interval=32
    )
    rng = random.Random(2015)
    live: list = []
    table = TextTable(
        ["event", "live objects", "worst-case avail", "Lemma-3 bound",
         "paid lambdas", "bound ok"],
        title=f"Adaptive Combo under churn (n={N}, r={R}, s={S}, k={K})",
    )

    events = churn_trace(400, arrival_probability=0.6, warmup_arrivals=50,
                         rng=random.Random(1))
    violations = 0
    for step, event in enumerate(events):
        if event.kind == ChurnKind.ARRIVAL:
            live.append(adaptive.add_object())
        elif live:
            adaptive.remove_object(live.pop(rng.randrange(len(live))))
        if live and step % 25 == 24:
            placement = adaptive.placement()
            report = evaluate_availability(placement, K, S, effort="auto")
            bound = adaptive.lower_bound()
            ok = report.available >= bound
            violations += 0 if ok else 1
            table.add_row(
                [
                    step + 1,
                    placement.b,
                    report.available,
                    bound,
                    str(adaptive.current_lambdas()),
                    "yes" if ok else "VIOLATED",
                ]
            )

    print(table.render())
    print(f"\nBound violations: {violations} (must be 0)")
    assert violations == 0


if __name__ == "__main__":
    main()
