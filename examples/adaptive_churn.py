#!/usr/bin/env python3
"""A cluster lifetime under churn, failures, and a recurring adversary.

Sec. IV-D of the paper leaves "an algorithm to adapt our placements as new
objects come and go" to future work. The library implements one
(:class:`repro.AdaptiveComboPlacement`) and a discrete-event simulator
(:mod:`repro.sim`) that drives it through a whole cluster lifetime:

* objects arrive and depart on a biased churn trace (60% arrivals);
* random node crashes repair after a fixed downtime, with a *lazy*
  re-replication policy that absorbs fast recoveries without moving data
  (so the Lemma-3 packing certificate stays valid);
* a worst-case adversary strikes every 16 time units, re-planning against
  the current population through one warm delta-aware attack engine
  (``AttackEngine.apply_delta`` absorbs the churn between strikes in
  O(changed replicas) — no per-strike rebuild).

The adaptive invariant: every *certified* strike must leave at least the
Lemma-3 floor implied by the packing multiplicity actually paid. The
simulator records exactly that, and this example asserts it.

Run:  python examples/adaptive_churn.py
      REPRO_EXAMPLE_SCALE=small python examples/adaptive_churn.py  # CI smoke
"""

import os

from repro.analysis.timeseries import render_report
from repro.sim import SimConfig, LifetimeSimulator

SMALL = os.environ.get("REPRO_EXAMPLE_SCALE", "") == "small"


def main() -> None:
    config = SimConfig(
        n=31, r=3, s=2, k=3,
        events=400 if SMALL else 2500,
        seed=2015,
        racks=4,
        arrival_probability=0.6,
        warmup_arrivals=50,
        failure_rate=0.02,
        repair_time=6.0,
        strike_period=16.0,
        measure_period=8.0,
        repair="lazy",
        repair_grace=10.0,
        replan_interval=32,
    )
    report = LifetimeSimulator(config).run()
    print(render_report(report))

    certified = report.certified_strikes()
    violations = report.bound_violations()
    print(
        f"\nCertified strikes: {certified}/{len(report.strikes)}; "
        f"Lemma-3 violations: {violations} (must be 0)"
    )
    assert violations == 0
    assert report.strikes, "expected the adversary to fire"


if __name__ == "__main__":
    main()
