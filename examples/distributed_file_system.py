#!/usr/bin/env python3
"""GFS/HDFS-style file placement on a large cluster with racks.

The paper's introduction cites GFS and Hadoop: files (here, chunks) are
replicated r = 3 ways. We model majority-quorum liveness (a chunk needs 2
of 3 replicas, so it dies once s = 2 replicas are lost) on a 257-node
cluster organized into racks, and compare Combo vs Random placement under
three failure modes:

* random node failures (the classic fault model),
* a full rack outage (correlated failure domain),
* the paper's worst-case adversary (targeted attack with placement
  knowledge).

Run:  python examples/distributed_file_system.py
"""

import os
import random
import statistics

from repro import ComboStrategy, RandomStrategy
from repro.cluster import (
    Cluster,
    CorrelatedInjector,
    RandomInjector,
    WorstCaseInjector,
    majority_quorum_rule,
)
from repro.designs.catalog import Existence
from repro.util.tables import TextTable

SMALL = os.environ.get("REPRO_EXAMPLE_SCALE", "") == "small"
N, B, RACKS = (71, 600, 8) if SMALL else (257, 2400, 16)
R = 3
RULE = majority_quorum_rule(R)  # s = 2
K = 5


def fresh_cluster(placement) -> Cluster:
    cluster = Cluster(N, racks=RACKS)
    cluster.apply_placement(placement)
    return cluster


def chunks_lost_random(placement, reps=10) -> float:
    losses = []
    for rep in range(reps):
        cluster = fresh_cluster(placement)
        RandomInjector(random.Random(rep)).inject(cluster, K, RULE)
        losses.append(len(cluster.dead_objects(RULE)))
    return statistics.fmean(losses)


def chunks_lost_rack(placement, reps=8) -> float:
    losses = []
    for rack in range(min(reps, RACKS)):
        cluster = fresh_cluster(placement)
        CorrelatedInjector().inject(cluster, rack=rack)
        losses.append(len(cluster.dead_objects(RULE)))
    return statistics.fmean(losses)


def chunks_lost_worst(placement) -> int:
    cluster = fresh_cluster(placement)
    WorstCaseInjector(effort="fast").inject(cluster, K, RULE)
    return len(cluster.dead_objects(RULE))


def main() -> None:
    print(f"Cluster: {N} nodes / {RACKS} racks, {B} chunks x {R} replicas, "
          f"majority quorum (chunk dies at s={RULE.s} replica losses)\n")

    combo = ComboStrategy(N, R, RULE.s, tier=Existence.CONSTRUCTIBLE)
    plan = combo.plan(B, K)
    placements = {
        "Combo": combo.place(B, K, plan=plan),
        "Random": RandomStrategy(N, R).place(B, random.Random(11)),
    }

    table = TextTable(
        ["policy", f"random k={K}", "rack outage", f"worst-case k={K}",
         "load max/mean"],
        title=f"Mean chunks lost out of {B}",
    )
    for name, placement in placements.items():
        loads = placement.loads()
        table.add_row(
            [
                name,
                round(chunks_lost_random(placement), 1),
                round(chunks_lost_rack(placement), 1),
                chunks_lost_worst(placement),
                f"{max(loads)}/{statistics.fmean(loads):.1f}",
            ]
        )
    print(table.render())
    print(
        f"\nCombo guarantee for k={K}: at most {B - plan.lower_bound} chunks "
        f"lost (lambdas={plan.lambdas})."
    )
    print(
        "Note how random failures barely hurt either policy — the paper's "
        "point is the worst-case column."
    )


if __name__ == "__main__":
    main()
