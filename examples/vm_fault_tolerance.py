#!/usr/bin/env python3
"""VM fault-tolerance placement: the paper's motivating r = 2 scenario.

The paper's introduction points at VM replication for fault tolerance
(e.g. VMware FT), which runs each VM as a primary/secondary *pair*:
r = 2 replicas, and the VM survives while either replica survives
(s = r = 2, "read-one" style liveness).

This example deploys 600 VM pairs on a 31-host cluster, then subjects
three placement policies to escalating targeted attacks (a hostile insider
picking hosts to power off):

* Combo          — this paper's strategy (for r = s = 2: pair design strata),
* Random         — load-balanced random (common practice),
* naive racking  — pair VMs on adjacent hosts (what ad-hoc deployment does).

Run:  python examples/vm_fault_tolerance.py
"""

import os
import random

from repro import ComboStrategy, Placement, RandomStrategy
from repro.cluster import Cluster, WorstCaseInjector, read_one_rule
from repro.designs.catalog import Existence
from repro.util.tables import TextTable

SMALL = os.environ.get("REPRO_EXAMPLE_SCALE", "") == "small"


def naive_adjacent_pairs(n: int, b: int) -> Placement:
    """Pair VM i on hosts (2i, 2i+1) mod n: the 'rack neighbours' anti-pattern."""
    sets = []
    for i in range(b):
        a = (2 * i) % n
        bb = (2 * i + 1) % n
        if a == bb:  # odd n wrap-around collision
            bb = (bb + 1) % n
        sets.append((a, bb))
    return Placement.from_replica_sets(n, sets, strategy="naive-adjacent")


def attack(placement: Placement, k: int, rule) -> int:
    cluster = Cluster(placement.n)
    cluster.apply_placement(placement)
    WorstCaseInjector(effort="auto").inject(cluster, k, rule)
    return len(cluster.dead_objects(rule))


def main() -> None:
    n, b, r = 31, (150 if SMALL else 600), 2
    rule = read_one_rule(r)  # VM dies only if BOTH replicas die (s = 2)
    k_values = (2, 3) if SMALL else (2, 3, 4, 5)

    combo = ComboStrategy(n, r, rule.s, tier=Existence.CONSTRUCTIBLE)
    placements = {
        "Combo": combo.place(b, k=3),
        "Random": RandomStrategy(n, r).place(b, random.Random(7)),
        "Naive-adjacent": naive_adjacent_pairs(n, b),
    }

    table = TextTable(
        ["policy", *[f"VMs lost @k={k}" for k in k_values], "max host load"],
        title=f"Worst-case VM loss out of {b} VM pairs on {n} hosts",
    )
    for name, placement in placements.items():
        losses = [attack(placement, k, rule) for k in k_values]
        table.add_row([name, *losses, placement.max_load()])
    print(table.render())

    guarantee = combo.plan(b, 3)
    print(
        f"\nCombo's k=3 guarantee (Lemma 3): at most "
        f"{b - guarantee.lower_bound} VMs lost — no attacker placement "
        f"knowledge can do worse."
    )


if __name__ == "__main__":
    main()
