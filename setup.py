"""Legacy setup shim.

The offline environments this repo targets may lack the ``wheel`` package
that PEP 660 editable installs require; with this shim and no
``[build-system]`` table in pyproject.toml, ``pip install -e .`` falls back
to the classic setuptools develop install, which works with setuptools
alone. All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
